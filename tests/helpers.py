"""Shared assertion helpers for the test suite."""

from __future__ import annotations

from repro.core.views import all_comparable


def assert_snapshot_outputs_valid(inputs, outputs):
    """Common assertion: snapshot outputs are valid for ``inputs``.

    ``inputs`` maps pid -> input; ``outputs`` maps pid -> view.  Checks
    self-inclusion, validity (outputs mention only participants'
    inputs), and pairwise containment — the stronger guarantee the
    paper's algorithm provides (Section 5.3.2).
    """
    all_inputs = set(inputs.values())
    for pid, output in outputs.items():
        assert inputs[pid] in output, (
            f"pid {pid} output {sorted(output)} misses own input {inputs[pid]}"
        )
        assert set(output) <= all_inputs, (
            f"pid {pid} output {sorted(output)} mentions non-inputs"
        )
    assert all_comparable(outputs.values()), (
        f"outputs not containment-related: "
        f"{ {pid: sorted(view) for pid, view in outputs.items()} }"
    )
