"""Tests for schedulers, processes, and the runner."""

import random

import pytest

from repro.core import SnapshotMachine, WriteScanMachine
from repro.memory import AnonymousMemory, WiringAssignment
from repro.sim import (
    GeneratorProcess,
    MachineProcess,
    PeriodicScheduler,
    ProcessStatus,
    RandomScheduler,
    RoundRobinScheduler,
    Runner,
    ScriptScheduler,
    SoloScheduler,
)
from repro.sim.machine import FIRST_ENABLED, RandomPolicy
from repro.sim.ops import Read, Write


class TestSchedulers:
    def test_round_robin_cycles_fairly(self):
        scheduler = RoundRobinScheduler()
        picks = [scheduler.choose(i, [0, 1, 2]) for i in range(6)]
        assert picks == [0, 1, 2, 0, 1, 2]

    def test_round_robin_skips_missing(self):
        scheduler = RoundRobinScheduler()
        assert scheduler.choose(0, [0, 1, 2]) == 0
        assert scheduler.choose(1, [0, 2]) == 2  # 1 is gone
        assert scheduler.choose(2, [0, 2]) == 0

    def test_random_scheduler_seeded(self):
        one = RandomScheduler(random.Random(1))
        two = RandomScheduler(random.Random(1))
        first = [one.choose(i, [0, 1, 2]) for i in range(20)]
        second = [two.choose(i, [0, 1, 2]) for i in range(20)]
        assert first == second
        assert set(first) == {0, 1, 2}

    def test_solo_scheduler_stops_without_fallback(self):
        scheduler = SoloScheduler(1)
        assert scheduler.choose(0, [0, 1, 2]) == 1
        assert scheduler.choose(1, [0, 2]) is None

    def test_solo_scheduler_with_fallback(self):
        scheduler = SoloScheduler(1, then_others=True)
        assert scheduler.choose(0, [0, 1, 2]) == 1
        assert scheduler.choose(1, [0, 2]) in (0, 2)

    def test_script_scheduler_follows_script(self):
        scheduler = ScriptScheduler([2, 0, 1])
        assert [scheduler.choose(i, [0, 1, 2]) for i in range(3)] == [2, 0, 1]
        assert scheduler.choose(3, [0, 1, 2]) is None

    def test_script_scheduler_raises_on_desync(self):
        scheduler = ScriptScheduler([2])
        with pytest.raises(RuntimeError):
            scheduler.choose(0, [0, 1])

    def test_periodic_scheduler_repeats(self):
        scheduler = PeriodicScheduler([0, 0, 1])
        picks = [scheduler.choose(i, [0, 1]) for i in range(6)]
        assert picks == [0, 0, 1, 0, 0, 1]

    def test_periodic_scheduler_skips_terminated(self):
        scheduler = PeriodicScheduler([0, 1])
        assert scheduler.choose(0, [1]) == 1
        assert scheduler.choose(1, [1]) == 1

    def test_periodic_scheduler_stops_when_pattern_dead(self):
        scheduler = PeriodicScheduler([0])
        assert scheduler.choose(0, [1]) is None

    def test_periodic_empty_pattern_rejected(self):
        with pytest.raises(ValueError):
            PeriodicScheduler([])


class TestMachineProcess:
    def test_policy_resolves_nondeterminism(self):
        machine = SnapshotMachine(3)
        process = MachineProcess(0, machine, 1, FIRST_ENABLED)
        assert process.next_op().reg == 0

    def test_random_policy_is_seeded(self):
        machine = SnapshotMachine(3)
        picks = set()
        for seed in range(5):
            process = MachineProcess(
                0, machine, 1, RandomPolicy(random.Random(seed))
            )
            picks.add(process.next_op().reg)
        assert len(picks) > 1

    def test_steps_counted(self):
        machine = SnapshotMachine(2)
        process = MachineProcess(0, machine, 1)
        process.apply(process.next_op(), None)
        assert process.steps_taken == 1

    def test_status_transitions(self):
        machine = SnapshotMachine(1, n_registers=1)
        process = MachineProcess(0, machine, 1)
        assert process.status is ProcessStatus.RUNNING
        while process.status is ProcessStatus.RUNNING:
            op = process.next_op()
            result = machine.register_initial_value() if isinstance(op, Read) else None
            # Feed it its own writes back (solo, 1 register).
            if isinstance(op, Read):
                result = getattr(process, "_last_written", machine.register_initial_value())
            else:
                process._last_written = op.value
            process.apply(op, result)
        assert process.output == frozenset({1})

    def test_next_op_after_done_raises(self):
        machine = SnapshotMachine(1, n_registers=1)
        process = MachineProcess(0, machine, 1)
        while process.status is ProcessStatus.RUNNING:
            op = process.next_op()
            if isinstance(op, Read):
                process.apply(op, getattr(process, "_w", machine.register_initial_value()))
            else:
                process._w = op.value
                process.apply(op, None)
        with pytest.raises(RuntimeError):
            process.next_op()


class TestGeneratorProcess:
    @staticmethod
    def echo_algorithm():
        value = yield Read(0)
        yield Write(0, ("seen", value))
        return value

    def test_lifecycle(self):
        process = GeneratorProcess(0, self.echo_algorithm())
        assert process.status is ProcessStatus.RUNNING
        op = process.next_op()
        assert op == Read(0)
        process.apply(op, "payload")
        op = process.next_op()
        assert op == Write(0, ("seen", "payload"))
        process.apply(op, None)
        assert process.status is ProcessStatus.DONE
        assert process.output == "payload"

    def test_mismatched_apply_rejected(self):
        process = GeneratorProcess(0, self.echo_algorithm())
        with pytest.raises(RuntimeError):
            process.apply(Read(5), None)

    def test_immediate_return(self):
        def trivial():
            return "done"
            yield  # pragma: no cover

        process = GeneratorProcess(0, trivial())
        assert process.status is ProcessStatus.DONE
        assert process.output == "done"

    def test_fingerprint_unsupported(self):
        process = GeneratorProcess(0, self.echo_algorithm())
        with pytest.raises(TypeError):
            process.local_fingerprint()


class TestRunner:
    def build(self, scheduler=None, detect_lasso=False, n=2):
        machine = WriteScanMachine(n)
        memory = AnonymousMemory(
            WiringAssignment.identity(n, n), machine.register_initial_value()
        )
        processes = [MachineProcess(pid, machine, pid + 1) for pid in range(n)]
        return Runner(
            memory, processes, scheduler or RoundRobinScheduler(),
            detect_lasso=detect_lasso,
        )

    def test_pid_order_enforced(self):
        machine = WriteScanMachine(2)
        memory = AnonymousMemory(
            WiringAssignment.identity(2, 2), machine.register_initial_value()
        )
        processes = [MachineProcess(1, machine, 1), MachineProcess(0, machine, 2)]
        with pytest.raises(ValueError):
            Runner(memory, processes, RoundRobinScheduler())

    def test_process_count_must_match_wiring(self):
        machine = WriteScanMachine(2)
        memory = AnonymousMemory(
            WiringAssignment.identity(3, 2), machine.register_initial_value()
        )
        with pytest.raises(ValueError):
            Runner(memory, [MachineProcess(0, machine, 1)], RoundRobinScheduler())

    def test_max_steps_respected(self):
        runner = self.build()
        result = runner.run(max_steps=17)
        assert result.steps == 17
        assert result.schedule and len(result.schedule) == 17

    def test_lasso_detection_requires_machines(self):
        machine = WriteScanMachine(1)
        memory = AnonymousMemory(
            WiringAssignment.identity(1, 1), machine.register_initial_value()
        )

        def forever():
            while True:
                yield Read(0)

        with pytest.raises(TypeError):
            Runner(memory, [GeneratorProcess(0, forever())],
                   RoundRobinScheduler(), detect_lasso=True)

    def test_lasso_found_on_periodic_schedule(self):
        runner = self.build(
            scheduler=PeriodicScheduler([0, 1]), detect_lasso=True
        )
        result = runner.run(100_000)
        assert result.lasso is not None
        assert result.lasso.cycle_pids == (0, 1)

    def test_outputs_recorded_in_trace(self):
        machine = SnapshotMachine(2)
        memory = AnonymousMemory(
            WiringAssignment.identity(2, 2), machine.register_initial_value()
        )
        processes = [MachineProcess(pid, machine, pid + 1) for pid in range(2)]
        runner = Runner(memory, processes, RoundRobinScheduler())
        result = runner.run(100_000)
        assert result.all_terminated
        assert {event.pid for event in result.trace.outputs()} == {0, 1}

    def test_result_midway_reports_running(self):
        runner = self.build()
        runner.run(max_steps=3)
        result = runner.result()
        assert all(
            status is ProcessStatus.RUNNING for status in result.statuses.values()
        )
        assert result.outputs == {}
