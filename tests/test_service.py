"""The distributed checking service: protocol, jobs, and elasticity.

The load-bearing property mirrors PR 4's: *bit-identical verdicts*.  A
campaign submitted to a coordinator and explored by a worker fleet must
report exactly what a serial run of the same configuration reports —
field for field, across engines and reductions, **and across worker
membership changes**: a worker SIGKILLed mid-run whose shards are taken
over by a freshly joined worker loses at most one checkpoint interval
and changes nothing in the final result.

Around that: the length-framed wire protocol (round-trips, reserved
keys, size guards, truncation vs clean close), the persisted job queue
(unknown-key refusal both ways, monotonic ids, requeue-on-restart,
cancel), heartbeat progress lines, per-worker statistics, and the
service CLI.
"""

import json
import multiprocessing
import os
import signal
import time
from array import array
from dataclasses import asdict
from pathlib import Path

import pytest

from repro.checker.parallel import check_snapshot_classes, class_key
from repro.cli import main
from repro.service.coordinator import CoordinatorHandle
from repro.service.heartbeat import Heartbeat, current_rss_bytes, format_bytes
from repro.service.jobs import JobError, JobQueue, JobRecord, JobSpec
from repro.service.protocol import (
    ConnectionClosed,
    MAX_HEADER_BYTES,
    ProtocolError,
    SyncFrameIO,
    bytes_to_payload,
    decode_header,
    encode_frame,
    payload_to_bytes,
)
from repro.service.transport import ServiceClient, ServiceError
from repro.service.worker import run_worker

try:
    from repro.checker.batch import HAVE_NUMPY
except Exception:  # pragma: no cover
    HAVE_NUMPY = False


def _quiet(line):
    pass


def _spawn_worker(host, port, name):
    ctx = multiprocessing.get_context("spawn")
    process = ctx.Process(
        target=run_worker, args=(host, port, name),
        kwargs={"emit": _quiet}, daemon=True,
    )
    process.start()
    return process


@pytest.fixture
def coordinator(tmp_path):
    handle = CoordinatorHandle(tmp_path / "state", log=_quiet)
    spawned = []

    def add_worker(name):
        process = _spawn_worker(*handle.endpoint, name)
        spawned.append(process)
        return process

    handle.add_worker = add_worker
    try:
        yield handle
    finally:
        handle.stop()
        for process in spawned:
            process.join(timeout=10)
            if process.is_alive():
                process.kill()


def _serial_rows(**kwargs):
    return {
        class_key(wiring): asdict(result)
        for wiring, result in check_snapshot_classes(2, **kwargs)
    }


def _service_rows(record):
    return {row["class"]: row["result"] for row in record.rows}


# ----------------------------------------------------------------------
# Wire protocol
# ----------------------------------------------------------------------


class TestProtocol:
    def test_frame_roundtrip_with_payloads(self):
        header = {"type": "round", "seq": 7, "shards": [0, 2]}
        payloads = [array("Q", [1, 2, 2**63, 2**64 - 1]), array("Q")]
        encoded = encode_frame(header, payloads)
        length = int.from_bytes(encoded[:4], "big")
        decoded, counts = decode_header(encoded[4:4 + length])
        assert decoded == header
        assert counts == [4, 0]
        rest = encoded[4 + length:]
        assert list(bytes_to_payload(rest)) == list(payloads[0])

    def test_payload_accepts_lists_bytes_and_arrays(self):
        expected = payload_to_bytes(array("Q", [5, 6]))
        assert payload_to_bytes([5, 6]) == expected
        assert payload_to_bytes(expected) == expected
        if HAVE_NUMPY:
            import numpy as np

            assert payload_to_bytes(np.array([5, 6], dtype=np.uint64)) == expected

    def test_reserved_header_key_refused(self):
        with pytest.raises(ProtocolError, match="reserved"):
            encode_frame({"#payloads": []})

    def test_oversized_header_refused(self):
        with pytest.raises(ProtocolError, match="exceeds"):
            encode_frame({"blob": "x" * (MAX_HEADER_BYTES + 1)})

    def test_misaligned_binary_payload_refused(self):
        with pytest.raises(ProtocolError, match="multiple of 8"):
            payload_to_bytes(b"\x00" * 9)

    def test_malformed_payload_counts_refused(self):
        with pytest.raises(ProtocolError, match="#payloads"):
            decode_header(b'{"#payloads": [-1]}')

    def test_non_object_header_refused(self):
        with pytest.raises(ProtocolError, match="JSON object"):
            decode_header(b'[1, 2]')

    def test_sync_truncation_vs_clean_close(self):
        import socket as socket_mod

        a, b = socket_mod.socketpair()
        io_a, io_b = SyncFrameIO(a), SyncFrameIO(b)
        io_a.send({"type": "ping"})
        header, payloads = io_b.recv()
        assert header == {"type": "ping"} and payloads == []
        # A partial frame then death: mid-frame truncation is an error...
        a.sendall(b"\x00\x00")
        a.close()
        with pytest.raises(ProtocolError, match="truncated"):
            io_b.recv()
        io_b.close()
        # ...while EOF at a frame boundary is a clean close.
        c, d = socket_mod.socketpair()
        c.close()
        with pytest.raises(ConnectionClosed):
            SyncFrameIO(d).recv()
        d.close()


# ----------------------------------------------------------------------
# Heartbeat progress lines
# ----------------------------------------------------------------------


class TestHeartbeat:
    def test_emits_on_cadence_with_rate_and_rss(self):
        clock = iter([0.0, 1.0, 61.0, 61.5, 130.0])
        lines = []
        heartbeat = Heartbeat(
            60.0, emit=lines.append, clock=lambda: next(clock)
        )
        heartbeat.tick(10, frontier=4, transitions=20)   # t=1: too soon
        heartbeat.tick(100, frontier=7, transitions=300)  # t=61: emits
        heartbeat.tick(110, frontier=7, transitions=310)  # t=61.5: too soon
        heartbeat.tick(400, frontier=2, transitions=900)  # t=130: emits
        assert len(lines) == 2
        assert "states=100" in lines[0] and "frontier=7" in lines[0]
        assert "(+100" in lines[0] and "rss=" in lines[0]
        assert "states=400" in lines[1] and "(+300" in lines[1]

    def test_label_appears_in_lines(self):
        clock = iter([0.0, 10.0])
        lines = []
        Heartbeat(
            1.0, emit=lines.append, clock=lambda: next(clock),
            label="class-001",
        ).tick(5)
        assert "[heartbeat class-001]" in lines[0]

    def test_rejects_nonpositive_cadence(self):
        with pytest.raises(ValueError):
            Heartbeat(0)

    def test_rss_and_format_helpers(self):
        assert current_rss_bytes() > 0
        assert format_bytes(512) == "512B"
        assert format_bytes(2 * 1024 * 1024) == "2.0MiB"

    def test_cli_check_heartbeat_prints_progress(self, capsys):
        assert main([
            "check", "--n", "3", "--budget", "200",
            "--heartbeat", "0.000001",
        ]) == 0
        captured = capsys.readouterr()
        assert "[heartbeat" in captured.err
        assert "states=" in captured.err


# ----------------------------------------------------------------------
# Job specs and the persisted queue
# ----------------------------------------------------------------------


class TestJobs:
    def test_spec_roundtrip(self):
        spec = JobSpec(n=2, symmetry=True, engine="batch", shards=8)
        assert JobSpec.from_dict(spec.to_dict()) == spec

    def test_unknown_spec_keys_refused_with_names(self):
        with pytest.raises(JobError, match="frobnicate"):
            JobSpec.from_dict({"n": 2, "frobnicate": True})

    def test_por_with_budget_refused(self):
        with pytest.raises(JobError, match="exhaustive"):
            JobSpec(por=True, budget=100).validate()

    def test_semantic_meta_excludes_operational_knobs(self):
        meta = JobSpec(store="spill", checkpoint_every=7).meta()
        assert "store" not in meta and "checkpoint_every" not in meta
        assert meta["shards"] == JobSpec().shards

    def test_queue_ids_monotonic_across_instances(self, tmp_path):
        queue = JobQueue(tmp_path)
        first = queue.submit(JobSpec())
        second = JobQueue(tmp_path).submit(JobSpec())
        assert [first.job_id, second.job_id] == ["job-000001", "job-000002"]

    def test_unknown_record_keys_refused(self, tmp_path):
        queue = JobQueue(tmp_path)
        record = queue.submit(JobSpec())
        payload = record.to_dict()
        payload["surprise"] = 1
        with pytest.raises(JobError, match="surprise"):
            JobRecord.from_dict(payload)

    def test_requeue_interrupted(self, tmp_path):
        queue = JobQueue(tmp_path)
        record = queue.submit(JobSpec())
        record.state = "running"
        queue.save(record)
        assert JobQueue(tmp_path).requeue_interrupted() == [record.job_id]
        assert queue.get(record.job_id).state == "queued"

    def test_cancel_queued_is_immediate(self, tmp_path):
        queue = JobQueue(tmp_path)
        record = queue.submit(JobSpec())
        assert queue.request_cancel(record.job_id).state == "cancelled"

    def test_malformed_job_id_refused(self, tmp_path):
        with pytest.raises(JobError, match="malformed"):
            JobQueue(tmp_path).get("../../etc/passwd")


# ----------------------------------------------------------------------
# End to end: service verdicts == serial verdicts, field for field
# ----------------------------------------------------------------------


class TestServiceConformance:
    def _run_and_compare(self, coordinator, spec, **serial_kwargs):
        coordinator.add_worker("w0")
        coordinator.add_worker("w1")
        with ServiceClient(*coordinator.endpoint) as client:
            job_id = client.submit(spec)
            record = client.wait(job_id, timeout=120)
        assert record.state == "done", record.error
        assert _service_rows(record) == _serial_rows(**serial_kwargs)
        return record

    def test_exhaustive_n2_matches_serial(self, coordinator):
        self._run_and_compare(coordinator, JobSpec(n=2, shards=4))

    def test_symmetry_and_por_match_pipe_sharded(
        self, coordinator, monkeypatch
    ):
        # Sharded C3 (cycle proviso) trusts only locally-owned novelty,
        # so POR counts depend on the logical partition — the
        # bit-identical baseline is the *pipe*-sharded engine at the
        # same shard count, plus verdict conformance with serial.
        import repro.checker.parallel as parallel
        from repro.checker.fast_snapshot import canonical_wiring_classes
        from repro.checker.parallel import explore_sharded

        monkeypatch.setattr(
            parallel, "effective_jobs", lambda requested: requested
        )
        pipe_rows = {}
        for wiring in canonical_wiring_classes(2, 2):
            result = explore_sharded(
                [1, 2], wiring, jobs=3, symmetry=True, por=True,
            )
            assert result.ok
            pipe_rows[class_key(wiring)] = asdict(result)
        coordinator.add_worker("w0")
        coordinator.add_worker("w1")
        with ServiceClient(*coordinator.endpoint) as client:
            job_id = client.submit(
                JobSpec(n=2, shards=3, symmetry=True, por=True)
            )
            record = client.wait(job_id, timeout=120)
        assert record.state == "done", record.error
        assert _service_rows(record) == pipe_rows

    @pytest.mark.skipif(not HAVE_NUMPY, reason="batch engine needs numpy")
    def test_batch_engine_matches_pipe_sharded(
        self, coordinator, monkeypatch
    ):
        # Symmetry runs report recanonicalizations_skipped, a sharding
        # artifact (boundary states arriving pre-canonicalized), so the
        # field-for-field baseline is again the pipe engine at the same
        # shard count.
        import repro.checker.parallel as parallel
        from repro.checker.fast_snapshot import canonical_wiring_classes
        from repro.checker.parallel import explore_sharded

        monkeypatch.setattr(
            parallel, "effective_jobs", lambda requested: requested
        )
        pipe_rows = {
            class_key(wiring): asdict(explore_sharded(
                [1, 2], wiring, jobs=4, engine="batch", symmetry=True,
            ))
            for wiring in canonical_wiring_classes(2, 2)
        }
        coordinator.add_worker("w0")
        coordinator.add_worker("w1")
        with ServiceClient(*coordinator.endpoint) as client:
            job_id = client.submit(
                JobSpec(n=2, shards=4, engine="batch", symmetry=True)
            )
            record = client.wait(job_id, timeout=120)
        assert record.state == "done", record.error
        assert _service_rows(record) == pipe_rows

    def test_budgeted_run_truncates_like_fixed_partition(
        self, coordinator, monkeypatch
    ):
        # A budget truncates at BFS-layer boundaries (deterministic for
        # a fixed logical partition, unlike the serial engine's exact
        # mid-layer cut) — so the field-for-field baseline is the pipe
        # engine at the same shard count.
        import repro.checker.parallel as parallel
        from repro.checker.fast_snapshot import canonical_wiring_classes
        from repro.checker.parallel import explore_sharded

        monkeypatch.setattr(
            parallel, "effective_jobs", lambda requested: requested
        )
        pipe_rows = {
            class_key(wiring): asdict(explore_sharded(
                [1, 2], wiring, jobs=2, max_states=500,
            ))
            for wiring in canonical_wiring_classes(2, 2)
        }
        coordinator.add_worker("w0")
        coordinator.add_worker("w1")
        with ServiceClient(*coordinator.endpoint) as client:
            job_id = client.submit(JobSpec(n=2, shards=2, budget=500))
            record = client.wait(job_id, timeout=120)
        assert record.state == "done", record.error
        assert _service_rows(record) == pipe_rows

    def test_progress_and_worker_stats_reported(self, coordinator):
        record = self._run_and_compare(coordinator, JobSpec(n=2, shards=4))
        assert record.progress["classes_done"] == len(record.rows)
        assert record.progress["states"] > 0
        with ServiceClient(*coordinator.endpoint) as client:
            workers = client.workers()
        assert {w["name"] for w in workers} == {"w0", "w1"}
        from repro.analysis import aggregate_service_statistics

        stats = aggregate_service_statistics(workers, wall_s=1.0)
        assert stats.states == sum(w.get("states", 0) for w in workers)
        assert "worker(s)" in stats.summary()

    def test_invalid_spec_refused_at_submission(self, coordinator):
        with ServiceClient(*coordinator.endpoint) as client:
            with pytest.raises(ServiceError, match="exhaustive"):
                client.submit(JobSpec(n=2, por=True, budget=10))

    def test_cancel_running_job(self, coordinator):
        coordinator.add_worker("w0")
        with ServiceClient(*coordinator.endpoint) as client:
            job_id = client.submit(JobSpec(n=2, round_delay_ms=200))
            deadline = time.monotonic() + 30
            while client.status(job_id)["job"]["state"] == "queued":
                assert time.monotonic() < deadline
                time.sleep(0.05)
            client.cancel(job_id)
            record = client.wait(job_id, timeout=30)
        assert record.state == "cancelled"


# ----------------------------------------------------------------------
# Elasticity: SIGKILL a worker mid-run, join a fresh one, same verdicts
# ----------------------------------------------------------------------


class TestWorkerElasticity:
    def _await_first_commit(self, state_dir, timeout=60.0):
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            commits = list(state_dir.glob("jobs/job-*/class-*/ckpt-*/COMMIT"))
            if commits:
                return commits
            time.sleep(0.02)
        raise AssertionError("no checkpoint committed within the timeout")

    def test_sigkilled_worker_replaced_by_fresh_join(self, coordinator):
        victim = coordinator.add_worker("victim")
        coordinator.add_worker("survivor")
        with ServiceClient(*coordinator.endpoint) as client:
            # round_delay_ms slows every round so the kill lands
            # mid-class deterministically; checkpoint_every=1 commits at
            # every BFS layer, so at most one layer of work is lost.
            job_id = client.submit(JobSpec(
                n=2, shards=4, checkpoint_every=1, round_delay_ms=100,
            ))
            self._await_first_commit(coordinator.state_dir)
            os.kill(victim.pid, signal.SIGKILL)
            victim.join(timeout=10)
            coordinator.add_worker("replacement")
            record = client.wait(job_id, timeout=180)
        assert record.state == "done", record.error
        assert _service_rows(record) == _serial_rows()

    def test_sole_worker_killed_job_waits_for_next_join(self, coordinator):
        victim = coordinator.add_worker("only")
        with ServiceClient(*coordinator.endpoint) as client:
            job_id = client.submit(JobSpec(
                n=2, shards=2, checkpoint_every=1, round_delay_ms=100,
            ))
            self._await_first_commit(coordinator.state_dir)
            os.kill(victim.pid, signal.SIGKILL)
            victim.join(timeout=10)
            # The fleet is empty now; the job must park, not fail.
            time.sleep(1.0)
            assert client.status(job_id)["job"]["state"] == "running"
            coordinator.add_worker("late-joiner")
            record = client.wait(job_id, timeout=180)
        assert record.state == "done", record.error
        assert _service_rows(record) == _serial_rows()


# ----------------------------------------------------------------------
# Coordinator restart: persisted queue + checkpoints resume the job
# ----------------------------------------------------------------------


class TestCoordinatorRestart:
    def test_interrupted_job_requeues_and_finishes(self, tmp_path):
        state_dir = tmp_path / "state"
        queue = JobQueue(state_dir)
        record = queue.submit(JobSpec(n=2, shards=2))
        record.state = "running"  # as if a previous coordinator died
        queue.save(record)
        handle = CoordinatorHandle(state_dir, log=_quiet)
        process = _spawn_worker(*handle.endpoint, "w0")
        try:
            with ServiceClient(*handle.endpoint) as client:
                finished = client.wait(record.job_id, timeout=120)
            assert finished.state == "done", finished.error
            assert _service_rows(finished) == _serial_rows()
        finally:
            handle.stop()
            process.join(timeout=10)
            if process.is_alive():
                process.kill()


# ----------------------------------------------------------------------
# Service CLI
# ----------------------------------------------------------------------


class TestServiceCli:
    def test_submit_wait_status_result_roundtrip(
        self, coordinator, capsys
    ):
        coordinator.add_worker("w0")
        state_dir = str(coordinator.state_dir)
        assert main([
            "submit", "--state-dir", state_dir, "--n", "2", "--wait",
        ]) == 0
        out = capsys.readouterr().out
        assert "submitted job-000001" in out
        assert out.count("OK") == 2 and "VIOLATED" not in out
        assert main(["status", "--state-dir", state_dir]) == 0
        out = capsys.readouterr().out
        assert "job-000001: done" in out and "w0" in out
        assert main([
            "result", "--state-dir", state_dir, "job-000001", "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert _service_rows(JobRecord.from_dict(payload)) == _serial_rows()

    def test_cancel_command(self, coordinator, capsys):
        state_dir = str(coordinator.state_dir)
        assert main(["submit", "--state-dir", state_dir]) == 0
        capsys.readouterr()
        assert main(["cancel", "--state-dir", state_dir, "job-000001"]) == 0
        # The job may still be mid-pickup ("cancel requested") or already
        # terminal ("cancelled") depending on the runner's timing.
        assert "cancel" in capsys.readouterr().out

    def test_result_unknown_job_errors(self, coordinator, capsys):
        assert main([
            "result", "--state-dir", str(coordinator.state_dir),
            "job-999999",
        ]) == 2
        assert "no such job" in capsys.readouterr().out

    def test_missing_endpoint_reported(self, tmp_path, capsys):
        assert main([
            "status", "--state-dir", str(tmp_path / "nowhere"),
        ]) == 2
        assert "repro serve" in capsys.readouterr().out

    def test_worker_gives_up_after_reconnect_attempts(self, capsys):
        assert main([
            "worker", "--connect", "127.0.0.1:1",
            "--reconnect-attempts", "0",
        ]) == 1
        assert "giving up" in capsys.readouterr().out
