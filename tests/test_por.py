"""Partial-order reduction: conformance, cycle proviso, composition.

The contract under test (``docs/checking.md``, "Partial-order
reduction"): every POR run reports the **same verdict and violation**
as the unreduced exploration while generating strictly fewer
transitions whenever any ample set is admitted.  Reduced state/
transition *counts* are not canonical — different C3 oracles (serial
visited set vs a shard's local view) legitimately pick different ample
candidates and reach differently-sized sound reductions — so only the
verdicts are compared across engines.

The cycle-proviso regression encodes the classic livelock miss C3
exists to prevent: a processor spinning through an invisible write
cycle would, without the proviso, absorb every ample selection and
starve the poisoning processor forever.
"""

from __future__ import annotations

import pytest

from repro.checker import Explorer, SystemSpec
from repro.checker.fast_snapshot import FastSnapshotSpec
from repro.checker.parallel import check_snapshot_classes, explore_sharded
from repro.checker.por import (
    AmpleSelector,
    FastAmpleSelector,
    PORCounters,
    aggregate_visibility,
)
from repro.checker.properties import (
    SNAPSHOT_SAFETY,
    snapshot_outputs_comparable,
    snapshot_outputs_valid,
    visibility_footprint,
)
from repro.cli import main
from repro.core import SnapshotMachine
from repro.memory.wiring import WiringAssignment, enumerate_wiring_assignments
from repro.sim.ops import Read, Write

#: One of the two canonical N=2 wiring classes (the non-identity one).
N2_CLASS = ((0, 1), (1, 0))

_SEEDED_MESSAGE = "seeded violation: a processor terminated"


# ----------------------------------------------------------------------
# Visibility footprints (C2 inputs)
# ----------------------------------------------------------------------


class TestVisibilityAggregation:
    def test_decorator_attaches_footprint(self):
        @visibility_footprint(outputs=True, registers=(1, 3))
        def prop(spec, state):
            return None

        assert prop.visibility_footprint == {
            "outputs": True,
            "registers": (1, 3),
            "locals": False,
        }

    def test_undeclared_property_makes_all_steps_visible(self):
        def bare(spec, state):
            return None

        visibility = aggregate_visibility([bare], n_registers=3)
        assert visibility.all_steps

    def test_locals_declaration_makes_all_steps_visible(self):
        @visibility_footprint(locals=True)
        def prop(spec, state):
            return None

        assert aggregate_visibility([prop], n_registers=3).all_steps

    def test_outputs_and_register_union(self):
        @visibility_footprint(outputs=True)
        def by_outputs(spec, state):
            return None

        @visibility_footprint(registers=(0, 2))
        def by_registers(spec, state):
            return None

        visibility = aggregate_visibility(
            [by_outputs, by_registers], n_registers=3
        )
        assert not visibility.all_steps
        assert visibility.outputs
        assert visibility.register_mask == 0b101

    def test_registers_all_is_the_full_mask(self):
        @visibility_footprint(registers="all")
        def prop(spec, state):
            return None

        visibility = aggregate_visibility([prop], n_registers=3)
        assert visibility.register_mask == 0b111

    def test_out_of_range_register_is_rejected(self):
        @visibility_footprint(registers=(5,))
        def prop(spec, state):
            return None

        with pytest.raises(ValueError, match="outside"):
            aggregate_visibility([prop], n_registers=3)


# ----------------------------------------------------------------------
# Fast engine: exhaustive N=2 conformance across por x symmetry
# ----------------------------------------------------------------------


def _verdicts(rows):
    return [
        (cls, result.ok, result.violation, result.complete)
        for cls, result in rows
    ]


class TestFastConformance:
    def test_n2_sweep_verdicts_identical_across_all_four_combos(self):
        base = check_snapshot_classes(2)
        combos = {
            "por": check_snapshot_classes(2, por=True),
            "symmetry": check_snapshot_classes(2, symmetry=True),
            "por_symmetry": check_snapshot_classes(
                2, por=True, symmetry=True
            ),
        }
        for label, rows in combos.items():
            assert _verdicts(rows) == _verdicts(base), label

        base_transitions = sum(r.transitions for _, r in base)
        reduced = sum(r.transitions for _, r in combos["por_symmetry"])
        assert base_transitions >= 2 * reduced  # the acceptance bar
        pruned = sum(
            r.por_counters["transitions_pruned"]
            for _, r in combos["por"]
        )
        assert pruned > 0

    def test_por_counters_account_for_every_state(self):
        for _, result in check_snapshot_classes(2, por=True):
            counters = result.por_counters
            assert counters is not None
            assert (
                counters["ample_states"] + counters["fully_expanded_states"]
                == result.states
            )

    def test_serial_fast_engine_matches_unreduced(self):
        spec = FastSnapshotSpec([1, 2], N2_CLASS)
        base = spec.explore()
        por = FastSnapshotSpec([1, 2], N2_CLASS).explore(por=True)
        assert (por.ok, por.violation, por.complete) == (
            base.ok,
            base.violation,
            base.complete,
        )
        assert por.transitions < base.transitions

    def test_sharded_por_matches_unreduced_verdict(self):
        base = FastSnapshotSpec([1, 2], N2_CLASS).explore()
        sharded = explore_sharded([1, 2], N2_CLASS, jobs=2, por=True)
        assert (sharded.ok, sharded.violation) == (base.ok, base.violation)
        assert sharded.complete
        assert sharded.por_counters is not None
        assert sharded.por_counters["transitions_pruned"] > 0

    def test_composes_with_fingerprint_and_symmetry(self):
        base = FastSnapshotSpec([1, 2], N2_CLASS).explore()
        reduced = FastSnapshotSpec([1, 2], N2_CLASS).explore(
            por=True, symmetry=True, fingerprint=True
        )
        assert (reduced.ok, reduced.violation) == (base.ok, base.violation)

    def test_seeded_violation_survives_reduction(self, monkeypatch):
        # Seed an outputs-footprint violation (fires when a processor
        # terminates).  Termination steps are exactly the visible ones
        # under the fast engine's C2, so POR must preserve it.
        original = FastSnapshotSpec.check_outputs

        def seeded(self, state):
            for pid in range(self.n):
                local = (state >> self.local_offsets[pid]) & self.local_mask
                if ((local >> self.o_phase) & 3) == 2:  # DONE
                    return _SEEDED_MESSAGE
            return original(self, state)

        monkeypatch.setattr(FastSnapshotSpec, "check_outputs", seeded)
        base = FastSnapshotSpec([1, 2], N2_CLASS).explore()
        por = FastSnapshotSpec([1, 2], N2_CLASS).explore(por=True)
        assert not base.ok and not por.ok
        assert base.violation == _SEEDED_MESSAGE
        assert por.violation == _SEEDED_MESSAGE

    def test_seeded_violation_survives_batch_reduction(self, monkeypatch):
        # Same seeding through the batch engine: the level-synchronous
        # selector's C2 treats termination steps as visible too, so the
        # vectorized reduction must preserve the violation as well.
        pytest.importorskip("numpy")
        original = FastSnapshotSpec.check_outputs

        def seeded(self, state):
            for pid in range(self.n):
                local = (state >> self.local_offsets[pid]) & self.local_mask
                if ((local >> self.o_phase) & 3) == 2:  # DONE
                    return _SEEDED_MESSAGE
            return original(self, state)

        monkeypatch.setattr(FastSnapshotSpec, "check_outputs", seeded)
        por = FastSnapshotSpec([1, 2], N2_CLASS).explore(
            por=True, engine="batch"
        )
        assert not por.ok
        assert por.violation == _SEEDED_MESSAGE

    def test_batch_por_counters_account_for_every_state(self):
        pytest.importorskip("numpy")
        for _, result in check_snapshot_classes(2, por=True, engine="batch"):
            counters = result.por_counters
            assert counters is not None
            assert (
                counters["ample_states"] + counters["fully_expanded_states"]
                == result.states
            )

    def test_por_refuses_wait_freedom(self):
        with pytest.raises(ValueError, match="wait-freedom"):
            FastSnapshotSpec([1, 2], N2_CLASS).explore(
                por=True, check_wait_freedom=True
            )


# ----------------------------------------------------------------------
# Generic engine: conformance and conservative degeneration
# ----------------------------------------------------------------------


def _generic_spec():
    wiring = list(enumerate_wiring_assignments(2, 2))[1]
    return SystemSpec(SnapshotMachine(2), [1, 2], wiring)


class TestGenericConformance:
    def test_undeclared_footprints_degenerate_to_full_expansion(self):
        # SNAPSHOT_SAFETY includes locals=True members: every step is
        # visible, so POR must change nothing at all.
        base = Explorer(_generic_spec(), invariants=SNAPSHOT_SAFETY).run()
        por = Explorer(
            _generic_spec(), invariants=SNAPSHOT_SAFETY, por=True
        ).run()
        assert (por.states, por.transitions) == (
            base.states,
            base.transitions,
        )
        assert por.por_counters["transitions_pruned"] == 0

    def test_outputs_footprint_conformance_all_four_combos(self):
        invariants = (snapshot_outputs_comparable, snapshot_outputs_valid)
        base = Explorer(_generic_spec(), invariants=invariants).run()
        combos = {
            "por": dict(por=True),
            "symmetry": dict(symmetry=True),
            "por_symmetry": dict(por=True, symmetry=True),
        }
        for label, kwargs in combos.items():
            result = Explorer(
                _generic_spec(), invariants=invariants, **kwargs
            ).run()
            assert (result.ok, result.violation) == (
                base.ok,
                base.violation,
            ), label
        por = Explorer(
            _generic_spec(), invariants=invariants, por=True
        ).run()
        assert por.transitions < base.transitions

    def test_por_refuses_keep_edges(self):
        with pytest.raises(ValueError, match="keep_edges"):
            Explorer(_generic_spec(), por=True, keep_edges=True)

    @pytest.mark.parametrize(
        "wiring", list(enumerate_wiring_assignments(2, 2)),
        ids=lambda w: str(w.permutations()),
    )
    def test_renaming_exhaustive_all_four_combos(self, wiring):
        from repro.checker.properties import renaming_names_valid
        from repro.core import RenamingMachine

        def run(**kwargs):
            spec = SystemSpec(RenamingMachine(2), ["a", "b"], wiring)
            return Explorer(
                spec, invariants=(renaming_names_valid,), **kwargs
            ).run()

        base = run()
        assert base.complete
        for label, kwargs in (
            ("por", dict(por=True)),
            ("symmetry", dict(symmetry=True)),
            ("por_symmetry", dict(por=True, symmetry=True)),
        ):
            result = run(**kwargs)
            assert (result.ok, result.violation, result.complete) == (
                base.ok,
                base.violation,
                base.complete,
            ), label

    def test_consensus_budgeted_verdicts_agree(self):
        # Consensus N=2 is infinite-state (timestamps grow), so only a
        # budgeted sweep exists; the reduced and unreduced prefixes
        # differ (the documented budget caveat), so the assertion is
        # limited to both honestly reporting "no violation found".
        from repro.checker.properties import consensus_agreement_and_validity
        from repro.core import ConsensusMachine

        def run(**kwargs):
            wiring = WiringAssignment.identity(2, 2)
            spec = SystemSpec(ConsensusMachine(2), ["x", "y"], wiring)
            return Explorer(
                spec,
                invariants=(consensus_agreement_and_validity,),
                max_states=20_000,
                **kwargs,
            ).run()

        base = run()
        por = run(por=True)
        assert base.ok and por.ok
        assert por.por_counters["transitions_pruned"] > 0


# ----------------------------------------------------------------------
# C3: the cycle proviso (livelock regression)
# ----------------------------------------------------------------------


class LivelockMachine:
    """Toggler spins invisibly; poisoner writes "BAD" once, visibly.

    The toggler (input ``"T"``) writes alternating bits to local
    register 0 forever — an invisible cycle under a ``registers=(1,)``
    footprint.  The poisoner (input ``"P"``) writes ``"BAD"`` to local
    register 1 and terminates.  Without the cycle proviso the ample
    selector picks the toggler at every state, closes its two-state
    cycle, and declares the system safe without ever running the
    poisoner.
    """

    def __init__(self, n_processors: int, n_registers: int = 2) -> None:
        self.n_processors = n_processors
        self.n_registers = n_registers

    def initial_state(self, my_input):
        return (my_input, 0)

    def enabled_ops(self, state):
        role, step = state
        if role == "T":
            return (Write(0, step),)
        if step == 0:
            return (Write(1, "BAD"),)
        return ()

    def apply(self, state, op, result):
        role, step = state
        if role == "T":
            return (role, 1 - step)
        return (role, 1)

    def output(self, state):
        role, step = state
        return "done" if role == "P" and step == 1 else None

    def register_initial_value(self):
        return "init"


@visibility_footprint(registers=(1,))
def _no_poison(spec, state):
    if state.registers[1] == "BAD":
        return "register 1 poisoned"
    return None


def _livelock_spec():
    return SystemSpec(
        LivelockMachine(2), ["T", "P"], WiringAssignment.identity(2, 2)
    )


class TestCycleProviso:
    def test_unreduced_exploration_finds_the_poison(self):
        result = Explorer(_livelock_spec(), invariants=(_no_poison,)).run()
        assert not result.ok
        assert "poisoned" in result.violation.message

    def test_without_proviso_the_violation_is_missed(self):
        # The documented livelock: C0-C2 alone admit the toggler's
        # invisible cycle as ample everywhere and never run the
        # poisoner.  This is exactly the unsoundness C3 repairs.
        result = Explorer(
            _livelock_spec(),
            invariants=(_no_poison,),
            por=True,
            por_cycle_proviso=False,
        ).run()
        assert result.ok
        assert result.complete
        assert result.por_counters["cycle_proviso_expansions"] == 0

    def test_proviso_restores_the_violation(self):
        result = Explorer(
            _livelock_spec(), invariants=(_no_poison,), por=True
        ).run()
        assert not result.ok
        assert "poisoned" in result.violation.message
        assert result.por_counters["cycle_proviso_expansions"] > 0

    def test_fast_engine_proviso_seam_exists(self):
        # The fast engine carries the same seam; on the (cycle-free)
        # snapshot machine disabling C3 must not change the verdict.
        base = FastSnapshotSpec([1, 2], N2_CLASS).explore()
        no_c3 = FastSnapshotSpec([1, 2], N2_CLASS).explore(
            por=True, por_cycle_proviso=False
        )
        assert (no_c3.ok, no_c3.violation) == (base.ok, base.violation)


# ----------------------------------------------------------------------
# C1: future-footprint closure (register-retirement regression)
# ----------------------------------------------------------------------


class RetiringMachine:
    """Toucher writes register 0 once and retires; prober probes it.

    The toucher (input ``"T"``) writes ``"touched"`` to register 0 and
    then never issues another operation — register 0 is permanently
    retired from its footprint.  The prober (input ``"P"``) writes a
    marker to register 2, then reads register 0, and poisons register
    1 iff the read still saw the initial value.

    At the initial state the toucher's *current* footprint ``{r0}`` is
    disjoint from the prober's *current* footprint ``{r2}``, so
    current-operation C1 admits the toucher as ample and prunes every
    ordering in which the prober's later read of r0 precedes the
    toucher's write — exactly the orderings that poison r1.  The write-
    scan machines cannot exhibit this (an active processor eventually
    scans everything, so its current scan footprint already covers its
    future), which is why the approximation survived its conformance
    suite; a retiring machine needs the closure.
    """

    def __init__(self, n_processors: int, n_registers: int = 3) -> None:
        self.n_processors = n_processors
        self.n_registers = n_registers

    def initial_state(self, my_input):
        return (my_input, "start")

    def register_initial_value(self):
        return "init"

    def enabled_ops(self, state):
        role, step = state
        if role == "T":
            return (Write(0, "touched"),) if step == "start" else ()
        if step == "start":
            return (Write(2, "mark"),)
        if step == "probe":
            return (Read(0),)
        if step == "poison":
            return (Write(1, 9),)
        return ()

    def apply(self, state, op, result):
        role, step = state
        if role == "T":
            return (role, "retired")
        if step == "start":
            return (role, "probe")
        if step == "probe":
            return (role, "poison" if result == "init" else "clean")
        return (role, "done")

    def output(self, state):
        return None


class RetiringMachineWithFootprint(RetiringMachine):
    """The same machine declaring its exact future footprints."""

    def future_footprint(self, state):
        role, step = state
        if role == "T":
            return ((0,), ()) if step == "start" else ((), ())
        if step == "start":
            return ((1, 2), (0,))
        if step == "probe":
            return ((1,), (0,))
        if step == "poison":
            return ((1,), ())
        return ((), ())


@visibility_footprint(registers=(1,))
def _r1_not_poisoned(spec, state):
    if state.registers[1] == 9:
        return "register 1 poisoned by an unprobed read"
    return None


def _retiring_spec(machine_cls):
    return SystemSpec(
        machine_cls(2), ["T", "P"], WiringAssignment.identity(2, 3)
    )


class TestFutureFootprintClosure:
    def test_unreduced_exploration_finds_the_poison(self):
        result = Explorer(
            _retiring_spec(RetiringMachine), invariants=(_r1_not_poisoned,)
        ).run()
        assert not result.ok
        assert "poisoned" in result.violation.message

    def test_without_the_hook_the_violation_is_missed(self):
        # The documented C1 gap: current-operation footprints admit the
        # toucher as ample at the root, pruning the prober-reads-first
        # orderings.  This is what the future-footprint closure repairs.
        result = Explorer(
            _retiring_spec(RetiringMachine),
            invariants=(_r1_not_poisoned,),
            por=True,
        ).run()
        assert result.ok
        assert result.complete
        assert result.por_counters["ample_states"] > 0

    def test_hook_restores_the_violation(self):
        result = Explorer(
            _retiring_spec(RetiringMachineWithFootprint),
            invariants=(_r1_not_poisoned,),
            por=True,
        ).run()
        assert not result.ok
        assert "poisoned" in result.violation.message

    def test_hook_tightens_rather_than_pessimizes(self):
        # The closure must not degenerate to full expansion: the
        # prober's marker write at the root is independent of the
        # toucher's entire future and stays ample.
        result = Explorer(
            _retiring_spec(RetiringMachineWithFootprint),
            invariants=(_r1_not_poisoned,),
            por=True,
        ).run()
        assert result.por_counters["ample_states"] > 0
        assert result.por_counters["transitions_pruned"] > 0


# ----------------------------------------------------------------------
# Counters and statistics plumbing
# ----------------------------------------------------------------------


class TestCounters:
    def test_as_dict_load_roundtrip(self):
        counters = PORCounters()
        counters.transitions_pruned = 7
        counters.ample_states = 3
        counters.fully_expanded_states = 4
        counters.cycle_proviso_expansions = 1
        restored = PORCounters()
        restored.load(counters.as_dict())
        assert restored.as_dict() == counters.as_dict()

    def test_aggregate_por_statistics_skips_unreduced_results(self):
        from repro.analysis import aggregate_por_statistics

        por = FastSnapshotSpec([1, 2], N2_CLASS).explore(por=True)
        base = FastSnapshotSpec([1, 2], N2_CLASS).explore()
        stats = aggregate_por_statistics([por, base])
        assert stats.transitions_pruned == (
            por.por_counters["transitions_pruned"]
        )
        assert 0.0 < stats.ample_fraction < 1.0
        assert "transitions pruned" in stats.summary()

    def test_selectors_expose_counters(self):
        spec = FastSnapshotSpec([1, 2], N2_CLASS)
        selector = FastAmpleSelector(spec)
        assert selector.counters.as_dict()["ample_states"] == 0
        generic = AmpleSelector(_generic_spec(), (_no_poison,))
        assert not generic.visibility.all_steps


# ----------------------------------------------------------------------
# CLI: the budget gate and reporting
# ----------------------------------------------------------------------


class TestCli:
    def test_n3_por_refused_under_default_budget(self, capsys):
        assert main(["check", "--n", "3", "--por"]) == 2
        out = capsys.readouterr().out
        assert "--por-unsafe-budget" in out and "--budget 0" in out

    def test_n3_por_allowed_with_explicit_override(self, capsys):
        assert main([
            "check", "--n", "3", "--por", "--por-unsafe-budget",
            "--budget", "3000",
        ]) == 0
        assert "[por:" in capsys.readouterr().out

    def test_n2_por_symmetry_reports_totals(self, capsys):
        assert main(["check", "--n", "2", "--por", "--symmetry"]) == 0
        out = capsys.readouterr().out
        assert "[por:" in out
        assert "por total:" in out

    def test_resume_refuses_por_flip(self, capsys, tmp_path):
        assert main(["check", "--n", "3", "--budget", "2000",
                     "--checkpoint-dir", str(tmp_path)]) == 0
        capsys.readouterr()
        assert main(["check", "--n", "3", "--budget", "2000",
                     "--por", "--por-unsafe-budget",
                     "--resume", str(tmp_path)]) == 2
        out = capsys.readouterr().out
        assert "configuration mismatch" in out and "por" in out
