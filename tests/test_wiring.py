"""Unit and property tests for wirings (the memory-anonymity mechanism)."""

import random

import pytest
from hypothesis import given, strategies as st

from repro.memory.wiring import (
    Wiring,
    WiringAssignment,
    enumerate_wiring_assignments,
)


class TestWiring:
    def test_identity(self):
        wiring = Wiring.identity(4)
        assert [wiring.to_physical(i) for i in range(4)] == [0, 1, 2, 3]

    def test_rotation(self):
        wiring = Wiring.rotation(3, 1)
        assert [wiring.to_physical(i) for i in range(3)] == [1, 2, 0]

    def test_rotation_wraps(self):
        wiring = Wiring.rotation(3, 5)  # == shift 2
        assert wiring == Wiring.rotation(3, 2)

    def test_inverse_roundtrip(self):
        wiring = Wiring([2, 0, 1])
        for local in range(3):
            assert wiring.to_local(wiring.to_physical(local)) == local
        for physical in range(3):
            assert wiring.to_physical(wiring.to_local(physical)) == physical

    def test_non_permutation_rejected(self):
        with pytest.raises(ValueError):
            Wiring([0, 0, 1])
        with pytest.raises(ValueError):
            Wiring([1, 2, 3])

    def test_equality_and_hash(self):
        assert Wiring([1, 0]) == Wiring((1, 0))
        assert hash(Wiring([1, 0])) == hash(Wiring((1, 0)))
        assert Wiring([0, 1]) != Wiring([1, 0])

    def test_shuffled_is_permutation(self):
        rng = random.Random(1)
        for _ in range(20):
            wiring = Wiring.shuffled(5, rng)
            assert sorted(wiring.permutation) == list(range(5))

    @given(st.integers(min_value=1, max_value=8), st.integers())
    def test_shuffled_roundtrip_property(self, size, seed):
        wiring = Wiring.shuffled(size, random.Random(seed))
        assert all(
            wiring.to_local(wiring.to_physical(i)) == i for i in range(size)
        )


class TestWiringAssignment:
    def test_identity_assignment(self):
        assignment = WiringAssignment.identity(3, 4)
        assert assignment.n_processors == 3
        assert assignment.n_registers == 4
        assert all(w == Wiring.identity(4) for w in assignment)

    def test_mixed_register_counts_rejected(self):
        with pytest.raises(ValueError):
            WiringAssignment([Wiring.identity(2), Wiring.identity(3)])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            WiringAssignment([])

    def test_indexing(self):
        assignment = WiringAssignment.from_permutations([(0, 1), (1, 0)])
        assert assignment[1].to_physical(0) == 1
        assert assignment.wiring_of(0) == Wiring.identity(2)

    def test_permutations_hashable_form(self):
        assignment = WiringAssignment.from_permutations([(0, 1), (1, 0)])
        assert assignment.permutations() == ((0, 1), (1, 0))
        assert hash(assignment) == hash(
            WiringAssignment.from_permutations([(0, 1), (1, 0)])
        )


class TestCanonicalization:
    def test_canonical_first_is_identity(self):
        assignment = WiringAssignment.from_permutations([(1, 2, 0), (2, 0, 1)])
        canonical = assignment.canonicalize()
        assert canonical[0] == Wiring.identity(3)

    def test_canonicalize_preserves_relative_wiring(self):
        # Relabelling is invisible: reading "local i of p after p wrote
        # local j of q" relations must be preserved.  Equivalent check:
        # sigma_q o sigma_p^{-1} is invariant.
        assignment = WiringAssignment.from_permutations([(1, 2, 0), (2, 0, 1)])
        canonical = assignment.canonicalize()

        def relative(a):
            p, q = a[0], a[1]
            return tuple(q.to_local(p.to_physical(i)) for i in range(3))

        # relative wiring from p0's locals to p1's locals is unchanged
        original_rel = tuple(
            assignment[1].to_local(assignment[0].to_physical(i)) for i in range(3)
        )
        canonical_rel = tuple(
            canonical[1].to_local(canonical[0].to_physical(i)) for i in range(3)
        )
        assert original_rel == canonical_rel

    def test_identity_assignment_is_fixed_point(self):
        assignment = WiringAssignment.identity(2, 3)
        assert assignment.canonicalize() == assignment


class TestEnumeration:
    def test_count_with_symmetry(self):
        assignments = list(enumerate_wiring_assignments(2, 2))
        # sigma_0 pinned to identity; sigma_1 ranges over 2! = 2 perms.
        assert len(assignments) == 2

    def test_count_without_symmetry(self):
        assignments = list(
            enumerate_wiring_assignments(2, 2, fix_first_identity=False)
        )
        assert len(assignments) == 4

    def test_three_processors_three_registers(self):
        assignments = list(enumerate_wiring_assignments(3, 3))
        assert len(assignments) == 36  # (3!)^2

    def test_every_full_assignment_has_canonical_representative(self):
        canonical_set = {
            assignment.permutations()
            for assignment in enumerate_wiring_assignments(2, 2)
        }
        for assignment in enumerate_wiring_assignments(
            2, 2, fix_first_identity=False
        ):
            assert assignment.canonicalize().permutations() in canonical_set

    def test_all_enumerated_are_distinct(self):
        assignments = [
            a.permutations() for a in enumerate_wiring_assignments(3, 2)
        ]
        assert len(assignments) == len(set(assignments))
