"""Tests for obstruction-free consensus (Figure 5, Section 7)."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.api import build_runner, run_consensus
from repro.core.consensus import (
    ConsensusMachine,
    TimestampedValue,
    decide_or_adopt,
    max_timestamps,
)
from repro.memory.wiring import WiringAssignment
from repro.sim import SoloScheduler
from repro.tasks import ConsensusTask, check_group_solution


def tv(value, ts):
    return TimestampedValue(value, ts)


class TestChandraRule:
    def test_max_timestamps(self):
        snap = frozenset({tv("a", 0), tv("a", 3), tv("b", 1)})
        assert max_timestamps(snap) == {"a": 3, "b": 1}

    def test_rejects_non_records(self):
        with pytest.raises(TypeError):
            max_timestamps(frozenset({"plain"}))

    def test_no_decision_at_timestamp_zero(self):
        """Even a lone value cannot decide before reaching timestamp 2
        (absent rivals count as timestamp 0) — required for agreement."""
        decision, pref, ts = decide_or_adopt(frozenset({tv("a", 0)}))
        assert decision is None
        assert pref == "a"
        assert ts == 1

    def test_lone_value_decides_at_timestamp_two(self):
        decision, _, _ = decide_or_adopt(frozenset({tv("a", 2)}))
        assert decision == "a"

    def test_two_ahead_decides(self):
        snap = frozenset({tv("a", 3), tv("b", 1)})
        decision, _, _ = decide_or_adopt(snap)
        assert decision == "a"

    def test_one_ahead_adopts_leader(self):
        snap = frozenset({tv("a", 2), tv("b", 1)})
        decision, pref, ts = decide_or_adopt(snap)
        assert decision is None
        assert pref == "a"
        assert ts == 3

    def test_tie_never_decides(self):
        snap = frozenset({tv("a", 4), tv("b", 4)})
        decision, pref, ts = decide_or_adopt(snap)
        assert decision is None
        assert ts == 5

    def test_tie_break_is_deterministic(self):
        snap = frozenset({tv("a", 4), tv("b", 4)})
        prefs = {decide_or_adopt(snap)[1] for _ in range(10)}
        assert len(prefs) == 1

    def test_empty_snapshot_rejected(self):
        with pytest.raises(ValueError):
            decide_or_adopt(frozenset())


class TestAgreementAndValidity:
    @given(
        st.lists(st.sampled_from(["a", "b"]), min_size=2, max_size=4),
        st.integers(min_value=0, max_value=2**32),
    )
    @settings(max_examples=40, deadline=None)
    def test_agreement_and_validity_random_schedules(self, proposals, seed):
        result = run_consensus(proposals, seed=seed, max_steps=3_000_000)
        decided = set(result.outputs.values())
        assert len(decided) <= 1
        if decided:
            assert decided <= set(proposals)

    @given(st.integers(min_value=0, max_value=2**32))
    @settings(max_examples=30, deadline=None)
    def test_group_solves_consensus_task(self, seed):
        proposals = ["a", "b", "a"]
        result = run_consensus(proposals, seed=seed, max_steps=3_000_000)
        if not result.outputs:
            return  # obstruction-free: nontermination is allowed
        inputs = {pid: proposals[pid] for pid in range(len(proposals))}
        check = check_group_solution(ConsensusTask(), inputs, result.outputs)
        assert check.valid, check.reason

    def test_unanimous_inputs_decide_that_input(self):
        for seed in range(10):
            result = run_consensus(["v", "v", "v"], seed=seed)
            assert set(result.outputs.values()) <= {"v"}
            assert result.outputs, seed


class TestObstructionFreedom:
    def test_solo_run_decides(self):
        """A processor running alone must decide (obstruction-freedom)."""
        machine = ConsensusMachine(3)
        wiring = WiringAssignment.random(3, 3, random.Random(5))
        runner = build_runner(
            machine, ["a", "b", "c"], seed=5, wiring=wiring,
            scheduler=SoloScheduler(0),
        )
        result = runner.run(10 ** 6)
        assert result.outputs.get(0) == "a"

    def test_solo_after_contention_adopts_leader(self):
        """After some contention, a solo runner decides *some* proposed
        value (possibly not its own — validity, not lock-in)."""
        rng = random.Random(11)
        machine = ConsensusMachine(3)
        wiring = WiringAssignment.random(3, 3, rng)
        from repro.sim import MachineProcess, RandomPolicy
        from repro.memory import AnonymousMemory
        from repro.sim.runner import Runner
        from repro.sim.schedulers import RandomScheduler

        memory = AnonymousMemory(wiring, machine.register_initial_value())
        processes = [
            MachineProcess(pid, machine, f"v{pid}", RandomPolicy(rng))
            for pid in range(3)
        ]
        runner = Runner(memory, processes, RandomScheduler(rng))
        # Contention phase: a few hundred random steps.
        for _ in range(300):
            enabled = runner.enabled_pids()
            if not enabled:
                break
            runner.step_process(rng.choice(enabled))
        # Solo phase for processor 0.
        while runner.processes[0].status.value == "running":
            runner.step_process(0)
        assert runner.processes[0].output in {"v0", "v1", "v2"}

    def test_decision_latency_solo_is_bounded(self):
        """Solo decision within a few long-lived snapshot invocations
        (climb to ts 2, each invocation is one O(N^3) solo climb)."""
        machine = ConsensusMachine(4)
        wiring = WiringAssignment.identity(4, 4)
        runner = build_runner(
            machine, ["a", "b", "c", "d"], seed=None, wiring=wiring,
            scheduler=SoloScheduler(0),
        )
        result = runner.run(10 ** 6)
        assert result.outputs.get(0) == "a"
        solo_steps = result.trace.step_counts()[0]
        n = 4
        per_invocation = 2 * (n * n + 2 * n) * (n + 1)
        assert solo_steps <= 4 * per_invocation


class TestDecidedStateIsTerminal:
    def test_no_ops_after_decision(self):
        machine = ConsensusMachine(2)
        runner = build_runner(machine, ["a", "b"], seed=2)
        runner.run(2_000_000)
        for process in runner.processes:
            if process.output is not None:
                assert machine.enabled_ops(process.state) == ()

    def test_timestamps_monotone_in_trace(self):
        """Each processor's written timestamps never decrease."""
        machine = ConsensusMachine(3)
        runner = build_runner(machine, ["a", "b", "c"], seed=13)
        result = runner.run(2_000_000)
        last_ts = {}
        for event in result.trace.writes():
            views = event.value.view
            own_max = max((r.timestamp for r in views), default=0)
            previous = last_ts.get(event.pid, -1)
            assert own_max >= previous
            last_ts[event.pid] = own_max
