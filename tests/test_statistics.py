"""Tests for execution statistics (benchmark-harness support)."""

from repro.analysis import collect_statistics, level_trace, overwrite_counts
from repro.api import run_snapshot, run_write_scan
from repro.memory.trace import Trace
from repro.sim.scripted import build_figure2_runner


class TestCollectStatistics:
    def test_counts_partition_steps(self):
        result = run_snapshot([1, 2, 3], seed=4)
        stats = collect_statistics(result.trace)
        assert stats.reads + stats.writes == stats.total_steps
        assert stats.outputs == 3
        assert sum(stats.steps_per_pid.values()) == stats.total_steps

    def test_max_and_mean(self):
        result = run_snapshot([1, 2], seed=1)
        stats = collect_statistics(result.trace)
        assert stats.max_steps_per_pid >= stats.mean_steps_per_pid

    def test_summary_renders(self):
        result = run_snapshot([1, 2], seed=2)
        text = collect_statistics(result.trace).summary()
        assert "steps=" in text and "overwrites" in text

    def test_empty_trace(self):
        stats = collect_statistics(Trace())
        assert stats.total_steps == 0
        assert stats.mean_steps_per_pid == 0.0


class TestOverwriteAccounting:
    def test_figure2_has_cross_overwrites(self):
        """Figure 2 is all about overwriting each other: the churners
        produce cross-processor overwrites every cycle."""
        runner = build_figure2_runner(n_cycles=3)
        result = runner.run(1_000_000)
        stats = collect_statistics(result.trace)
        assert stats.cross_overwrites > 0
        counts = overwrite_counts(result.trace)
        # p1 overwrites p3, p3 overwrites p2 (rows 3-13).
        assert counts.get(0, 0) > 0
        assert counts.get(2, 0) > 0

    def test_unread_overwrites_detect_information_loss(self):
        runner = build_figure2_runner(n_cycles=3)
        result = runner.run(1_000_000)
        stats = collect_statistics(result.trace)
        # In Figure 2 the churners' writes are erased before anyone
        # reads many of them.
        assert stats.unread_overwrites > 0

    def test_solo_run_has_no_cross_overwrites(self):
        from repro.api import build_runner
        from repro.core import SnapshotMachine
        from repro.memory.wiring import WiringAssignment
        from repro.sim import SoloScheduler

        machine = SnapshotMachine(3)
        runner = build_runner(
            machine, [1, 2, 3], seed=None,
            wiring=WiringAssignment.identity(3, 3),
            scheduler=SoloScheduler(0),
        )
        result = runner.run(100_000)
        stats = collect_statistics(result.trace)
        assert stats.cross_overwrites == 0


class TestLevelTrace:
    def test_levels_recorded_per_processor(self):
        result = run_snapshot([1, 2, 3], seed=6)
        levels = level_trace(result.trace)
        assert set(levels) <= {0, 1, 2}
        assert all(all(lv >= 0 for lv in seq) for seq in levels.values())

    def test_write_scan_has_no_levels(self):
        result = run_write_scan([1, 2], steps=200, seed=3)
        assert level_trace(result.trace) == {}

    def test_solo_climb_levels_reach_target(self):
        from repro.api import build_runner
        from repro.core import SnapshotMachine
        from repro.memory.wiring import WiringAssignment
        from repro.sim import SoloScheduler

        n = 3
        machine = SnapshotMachine(n)
        runner = build_runner(
            machine, [1, 2, 3], seed=None,
            wiring=WiringAssignment.identity(n, n),
            scheduler=SoloScheduler(0),
        )
        result = runner.run(100_000)
        levels = level_trace(result.trace)[0]
        # The climb passes through every level below the target.
        assert max(levels) == n - 1  # the level-N scan terminates without a write
