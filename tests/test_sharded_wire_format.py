"""Sharded wire format: the canonical bit and its skip accounting.

Boundary states travel as ``(state << 1) | canonical_bit``; a set bit
certifies the sender already canonicalized the state, so the receiving
shard skips re-canonicalization and counts the skip.  The protocol
tests drive ``_shard_worker`` directly over a pipe (a thread stands in
for the driver, so this works on a single-core host where
``effective_jobs`` would collapse a full run to the serial path); the
end-to-end tests monkeypatch ``effective_jobs`` to force real worker
processes and then require verdict/coverage conformance with the
serial engine plus a nonzero skip count.
"""

import multiprocessing
import threading

import pytest

import repro.checker.parallel as parallel
from repro.analysis import aggregate_symmetry_statistics
from repro.checker.fast_snapshot import FastSnapshotSpec
from repro.checker.parallel import _shard_worker, explore_sharded
from repro.checker.symmetry import FastCanonicalizer

#: Identity wiring class for N=2 — nontrivial stabilizer (order 2).
WIRING = ((0, 1), (0, 1))


def _run_rounds(rounds, symmetry=True, fingerprint=False):
    """Drive one worker (shard 0 of 1) through the given rounds."""
    parent, child = multiprocessing.Pipe()
    thread = threading.Thread(
        target=_shard_worker,
        args=(child, (1, 2), WIRING, None, 0, 1, True, fingerprint, symmetry),
    )
    thread.start()
    replies = []
    try:
        for entries in rounds:
            parent.send(("round", list(entries)))
            replies.append(parent.recv())
    finally:
        parent.send(("stop",))
        thread.join(timeout=30)
        parent.close()
    assert not thread.is_alive()
    return replies


def _noncanonical_reachable():
    """A reachable packed state that is not its own orbit representative."""
    spec = FastSnapshotSpec([1, 2], WIRING)
    canonicalizer = FastCanonicalizer(spec)
    assert not canonicalizer.trivial
    frontier = [spec.initial_state()]
    seen = set(frontier)
    buf = []
    for _ in range(6):
        next_frontier = []
        for state in frontier:
            spec.successor_states_into(state, buf)
            for successor in buf:
                if successor in seen:
                    continue
                seen.add(successor)
                next_frontier.append(successor)
                if canonicalizer.canonical(successor) != successor:
                    return spec, canonicalizer, successor
        frontier = next_frontier
    raise AssertionError("no non-canonical reachable state found")


class TestWorkerProtocol:
    def test_flagged_entries_skip_recanonicalization(self):
        spec = FastSnapshotSpec([1, 2], WIRING)
        canonical = FastCanonicalizer(spec).canonical(spec.initial_state())
        [reply] = _run_rounds([[(canonical << 1) | 1]])
        kind, admitted, _transitions, violation, outboxes, covered, skipped, _por = reply
        assert kind == "layer" and violation is None
        assert admitted == 1 and skipped == 1
        assert covered >= 1
        # Successors leave a symmetry worker already canonicalized, so
        # every outgoing entry carries the bit.
        assert all(
            entry & 1 for entries in outboxes.values() for entry in entries
        )

    def test_unflagged_orbit_mates_are_canonicalized_and_deduped(self):
        _spec, canonicalizer, state = _noncanonical_reachable()
        representative = canonicalizer.canonical(state)
        entries = [(representative << 1) | 1, (state << 1) | 0]
        [reply] = _run_rounds([entries])
        _kind, admitted, _t, _violation, _outboxes, _covered, skipped, _por = reply
        # The unflagged orbit mate is canonicalized on receipt and lands
        # on the already-admitted representative; only the flagged entry
        # counts as a skip.
        assert admitted == 1
        assert skipped == 1

    def test_plain_runs_never_set_the_bit(self):
        spec = FastSnapshotSpec([1, 2], WIRING)
        initial = spec.initial_state()
        [reply] = _run_rounds([[(initial << 1) | 0]], symmetry=False)
        _kind, admitted, _t, _violation, outboxes, covered, skipped, _por = reply
        assert admitted == 1 and skipped == 0 and covered is None
        assert all(
            entry & 1 == 0
            for entries in outboxes.values()
            for entry in entries
        )


class TestEndToEndConformance:
    @pytest.fixture(autouse=True)
    def force_two_workers(self, monkeypatch):
        # A single-core host would silently collapse jobs to 1 (serial
        # fallback) and never exercise the wire format.
        monkeypatch.setattr(parallel, "effective_jobs", lambda requested: requested)

    def test_symmetry_sharded_matches_serial_and_counts_skips(self):
        serial = FastSnapshotSpec([1, 2], WIRING).explore(symmetry=True)
        sharded = explore_sharded([1, 2], WIRING, jobs=2, symmetry=True)
        assert serial.complete and sharded.complete
        assert (serial.ok, serial.states, serial.covered_states) == (
            sharded.ok, sharded.states, sharded.covered_states,
        )
        assert sharded.symmetry_group_order == 2
        assert sharded.recanonicalizations_skipped > 0

    def test_unreduced_sharded_reports_no_skip_counter(self):
        sharded = explore_sharded([1, 2], WIRING, jobs=2)
        assert sharded.complete and sharded.ok
        assert sharded.recanonicalizations_skipped is None

    def test_aggregate_statistics_sum_the_skips(self):
        serial = FastSnapshotSpec([1, 2], WIRING).explore(symmetry=True)
        sharded = explore_sharded([1, 2], WIRING, jobs=2, symmetry=True)
        stats = aggregate_symmetry_statistics([serial, sharded])
        assert stats.recanonicalizations_skipped == (
            sharded.recanonicalizations_skipped
        )
        assert "re-canonicalizations skipped" in stats.summary()
