"""Tests for the non-wait-freedom certification of consensus.

The Figure 5 algorithm is obstruction-free but cannot be wait-free
(registers have consensus number 1): the undecided region of its state
graph must contain unboundedly long paths.  These tests exercise the
machinery of :mod:`repro.analysis.consensus_livelock` and establish the
result for the 2-processor instance.
"""

import pytest

from repro.analysis.consensus_livelock import (
    analyze_undecided_region,
    normalize_timestamps,
)
from repro.checker import SystemSpec
from repro.core import ConsensusMachine
from repro.core.consensus import ConsensusState, TimestampedValue
from repro.core.views import RegisterRecord
from repro.memory.wiring import WiringAssignment


@pytest.fixture(scope="module")
def spec():
    machine = ConsensusMachine(2)
    return SystemSpec(machine, ["v0", "v1"], WiringAssignment.identity(2, 2))


class TestNormalization:
    def test_initial_state_is_fixed_point(self, spec):
        state = spec.initial_state()
        assert normalize_timestamps(state) == state

    def test_shifted_states_normalize_equal(self, spec):
        from dataclasses import replace

        state = spec.initial_state()

        def shift(gstate, delta):
            registers = tuple(
                RegisterRecord(
                    view=frozenset(
                        TimestampedValue(r.value, r.timestamp + delta)
                        for r in reg.view
                    ),
                    level=reg.level,
                )
                for reg in gstate.registers
            )
            locals_ = tuple(
                ConsensusState(
                    inner=replace(
                        local.inner,
                        view=frozenset(
                            TimestampedValue(r.value, r.timestamp + delta)
                            for r in local.inner.view
                        ),
                    ),
                    preference=local.preference,
                    timestamp=local.timestamp + delta,
                    decision=local.decision,
                )
                for local in gstate.locals
            )
            from repro.checker.system import GlobalState

            return GlobalState(registers=registers, locals=locals_)

        shifted = shift(state, 5)
        assert shifted != state
        assert normalize_timestamps(shifted) == normalize_timestamps(state)

    def test_normalization_idempotent(self, spec):
        state = spec.initial_state()
        # Walk a few steps to get nonzero timestamps (stop if all
        # processors decide along this particular deterministic walk).
        for _ in range(60):
            successors = list(spec.successors(state))
            if not successors:
                break
            state = successors[-1][1]
        once = normalize_timestamps(state)
        assert normalize_timestamps(once) == once


class TestUndecidedRegion:
    @pytest.fixture(scope="class")
    def certificate(self, spec):
        return analyze_undecided_region(spec, max_depth=80)

    def test_unbounded_undecided_prefixes(self, certificate):
        """The frontier survives at every depth: undecided executions of
        unbounded length exist, so (König) an infinite undecided
        execution exists — consensus here is not wait-free."""
        assert certificate.unbounded_prefixes

    def test_frontier_never_empties(self, certificate):
        assert all(size > 0 for size in certificate.frontier_sizes)

    def test_period_detection_helper(self):
        """Unit check of the period detector (the long-horizon sweep
        that actually observes the region's period runs in benchmark
        E8, where a 170-deep frontier is affordable)."""
        from repro.analysis.consensus_livelock import _detect_period

        assert _detect_period([1, 2, 5, 7, 5, 7, 5, 7]) == 2
        assert _detect_period([3, 3, 3, 3]) == 1
        assert _detect_period([1, 2, 3, 4, 5]) is None
        assert _detect_period([]) is None

    def test_timestamps_grow_along_the_region(self, spec):
        # Deep undecided states carry higher timestamps: the livelock is
        # the race being perpetually renewed, not a frozen cycle.
        frontier = {spec.initial_state()}
        seen = set(frontier)
        for _ in range(90):
            frontier = {
                succ
                for state in frontier
                for _, succ in spec.successors(state)
                if not spec.outputs(succ) and succ not in seen
            }
            seen |= frontier
        max_ts = max(
            local.timestamp for state in frontier for local in state.locals
        )
        assert max_ts >= 3
