"""Checkpoint/resume: kill a run mid-flight, resume, get the same answer.

The load-bearing property is *bit-identical recovery*: a run that dies
between BFS layers and resumes from its last committed checkpoint must
report exactly the verdicts and state/transition counts of the run that
was never interrupted — exercised here for the serial engine (a
checkpointer that raises after its first commit) and the sharded engine
(a worker process SIGKILLed after the first commit, the ISSUE's
acceptance scenario).  Around that: checkpoint-file round-trips,
torn-file detection, COMMIT-marker discipline, configuration-mismatch
refusal, and the completed-run short-circuit.
"""

import json
import os
import signal

import pytest

import repro.checker.parallel as parallel
from repro.checker.batch import HAVE_NUMPY
from repro.checker.fast_snapshot import FastSnapshotSpec
from repro.checker.parallel import check_snapshot_classes, explore_sharded
from repro.store import (
    CheckpointError,
    CheckpointIncompatible,
    RunCheckpointer,
    SweepCheckpoint,
    read_u64_file,
    write_u64_file,
)

WIRING = ((0, 1), (0, 1))
META = {"n": 2, "budget": None, "symmetry": False, "git_sha": "test"}


def _signature(result):
    return (
        result.states, result.transitions, result.ok, result.complete,
        result.covered_states,
    )


# ----------------------------------------------------------------------
# Checkpoint files and metadata
# ----------------------------------------------------------------------


class TestCheckpointFiles:
    def test_u64_roundtrip(self, tmp_path):
        keys = [0, 1, 2**63, 2**64 - 1] + list(range(10_000, 20_000, 7))
        path = tmp_path / "keys.u64"
        assert write_u64_file(path, iter(keys)) == len(keys)
        assert list(read_u64_file(path)) == keys

    def test_torn_file_detected(self, tmp_path):
        path = tmp_path / "torn.u64"
        path.write_bytes(b"\x00" * 13)
        with pytest.raises(CheckpointError, match="torn"):
            read_u64_file(path)

    def test_meta_mismatch_refused(self, tmp_path):
        RunCheckpointer(tmp_path, META)
        with pytest.raises(CheckpointIncompatible, match="budget"):
            RunCheckpointer(tmp_path, {**META, "budget": 99})

    def test_git_sha_drift_only_warns(self, tmp_path):
        RunCheckpointer(tmp_path, META)
        with pytest.warns(UserWarning, match="git_sha"):
            RunCheckpointer(tmp_path, {**META, "git_sha": "other"})

    def test_uncommitted_checkpoint_is_invisible(self, tmp_path):
        checkpointer = RunCheckpointer(tmp_path, META)
        staging = checkpointer.begin()
        write_u64_file(staging / "frontier.u64", iter([1, 2]))
        # No commit: a crash here must leave "no checkpoint", not a torn
        # one.
        assert RunCheckpointer(tmp_path, META).latest() is None

    def test_commit_prunes_older_checkpoints(self, tmp_path):
        checkpointer = RunCheckpointer(tmp_path, META)
        first = checkpointer.write([1], {"admitted": 1}, [1])
        second = checkpointer.write([2], {"admitted": 2}, [1, 2])
        assert not first.directory.exists()
        assert second.directory.exists()
        latest = RunCheckpointer(tmp_path, META).latest()
        assert latest.seq == second.seq
        assert list(latest.frontier()) == [2]
        assert list(latest.visited()) == [1, 2]


# ----------------------------------------------------------------------
# Serial engine: die after the first commit, resume, same answer
# ----------------------------------------------------------------------


class _CrashAfterCommit(RunCheckpointer):
    """Raise (simulating a kill) right after the first committed write."""

    def commit(self, staging, counters):
        checkpoint = super().commit(staging, counters)
        raise KeyboardInterrupt("simulated kill after commit")
        return checkpoint  # pragma: no cover


class TestSerialResume:
    @pytest.mark.parametrize("symmetry", [False, True])
    def test_interrupted_run_resumes_to_identical_result(
        self, tmp_path, symmetry
    ):
        spec = FastSnapshotSpec([1, 2], WIRING)
        uninterrupted = spec.explore(symmetry=symmetry)
        meta = {**META, "symmetry": symmetry}
        with pytest.raises(KeyboardInterrupt):
            spec.explore(
                symmetry=symmetry,
                checkpointer=_CrashAfterCommit(tmp_path, meta, every=500),
            )
        assert RunCheckpointer(tmp_path, meta).latest() is not None
        resumed = spec.explore(
            symmetry=symmetry,
            checkpointer=RunCheckpointer(tmp_path, meta, every=500),
        )
        assert _signature(resumed) == _signature(uninterrupted)

    def test_completed_run_short_circuits(self, tmp_path):
        spec = FastSnapshotSpec([1, 2], WIRING)
        checkpointer = RunCheckpointer(tmp_path, META, every=500)
        first = spec.explore(checkpointer=checkpointer)
        # Resuming a finished run must replay the recorded result, even
        # if the state space were to change under it.
        replayed = spec.explore(
            checkpointer=RunCheckpointer(tmp_path, META, every=500),
            max_states=1,
        )
        assert _signature(replayed) == _signature(first)

    def test_wide_states_refuse_serial_checkpointing(
        self, tmp_path, monkeypatch
    ):
        # Checkpoint files are u64 arrays; a spec whose packed states
        # exceed 64 bits must be refused up front (fingerprint mode is
        # the escape hatch).
        spec = FastSnapshotSpec([1, 2], WIRING)
        monkeypatch.setattr(spec, "state_bits", 70)
        with pytest.raises(ValueError, match="70 bits"):
            spec.explore(checkpointer=RunCheckpointer(tmp_path, META))


# ----------------------------------------------------------------------
# Batch engine + POR: die mid-campaign, resume, bit-identical totals
# ----------------------------------------------------------------------


@pytest.mark.skipif(not HAVE_NUMPY, reason="batch engine needs numpy")
class TestBatchPorResume:
    """The level-synchronous selector's choices depend only on the
    frontier and the checkpointed visited set, so a resumed batch+POR
    run must replay the interrupted one's selections exactly: verdict,
    state count, and every ``PORCounters`` total bit-identical."""

    @pytest.mark.parametrize("symmetry", [False, True])
    def test_interrupted_batch_por_resumes_identically(
        self, tmp_path, symmetry
    ):
        spec = FastSnapshotSpec([1, 2], WIRING)
        kwargs = dict(engine="batch", por=True, symmetry=symmetry)
        uninterrupted = spec.explore(**kwargs)
        assert uninterrupted.por_counters is not None
        meta = {**META, "symmetry": symmetry, "por": True}
        with pytest.raises(KeyboardInterrupt):
            spec.explore(
                **kwargs,
                checkpointer=_CrashAfterCommit(tmp_path, meta, every=500),
            )
        assert RunCheckpointer(tmp_path, meta).latest() is not None
        resumed = spec.explore(
            **kwargs,
            checkpointer=RunCheckpointer(tmp_path, meta, every=500),
        )
        assert _signature(resumed) == _signature(uninterrupted)
        assert resumed.por_counters == uninterrupted.por_counters

    def test_sigkilled_sharded_batch_por_resumes_identically(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setattr(
            parallel, "effective_jobs", lambda requested: requested
        )
        kwargs = dict(jobs=2, por=True, engine="batch")
        uninterrupted = explore_sharded([1, 2], WIRING, **kwargs)
        assert uninterrupted.por_counters is not None
        meta = {**META, "por": True, "jobs": 2}
        killed = []

        def kill_one_worker():
            if killed:
                return
            import multiprocessing

            victim = multiprocessing.active_children()[0]
            os.kill(victim.pid, signal.SIGKILL)
            killed.append(victim.pid)

        with pytest.raises(RuntimeError, match="resume"):
            explore_sharded(
                [1, 2], WIRING, **kwargs,
                checkpointer=RunCheckpointer(tmp_path, meta, every=1),
                _after_checkpoint=kill_one_worker,
            )
        assert killed, "the test never reached a committed checkpoint"
        resumed = explore_sharded(
            [1, 2], WIRING, **kwargs,
            checkpointer=RunCheckpointer(tmp_path, meta, every=1),
        )
        assert _signature(resumed) == _signature(uninterrupted)
        assert resumed.por_counters == uninterrupted.por_counters


# ----------------------------------------------------------------------
# Sharded engine: SIGKILL a worker after a commit, resume, same answer
# ----------------------------------------------------------------------


class TestShardedKillResume:
    @pytest.fixture(autouse=True)
    def force_two_workers(self, monkeypatch):
        # A single-core host would collapse jobs to 1 (serial fallback)
        # and never exercise the sharded checkpoint protocol.
        monkeypatch.setattr(
            parallel, "effective_jobs", lambda requested: requested
        )

    @pytest.mark.parametrize("symmetry", [False, True])
    def test_sigkilled_worker_resumes_to_identical_result(
        self, tmp_path, symmetry
    ):
        uninterrupted = explore_sharded(
            [1, 2], WIRING, jobs=2, symmetry=symmetry
        )
        meta = {**META, "symmetry": symmetry, "jobs": 2}
        killed = []

        def kill_one_worker():
            if killed:
                return
            import multiprocessing

            victim = multiprocessing.active_children()[0]
            os.kill(victim.pid, signal.SIGKILL)
            killed.append(victim.pid)

        with pytest.raises(RuntimeError, match="resume"):
            explore_sharded(
                [1, 2], WIRING, jobs=2, symmetry=symmetry,
                checkpointer=RunCheckpointer(tmp_path, meta, every=1),
                _after_checkpoint=kill_one_worker,
            )
        assert killed, "the test never reached a committed checkpoint"
        resumed = explore_sharded(
            [1, 2], WIRING, jobs=2, symmetry=symmetry,
            checkpointer=RunCheckpointer(tmp_path, meta, every=1),
        )
        assert _signature(resumed) == _signature(uninterrupted)

    def test_exhaustive_sweep_after_kill_matches_uninterrupted(
        self, tmp_path
    ):
        # The acceptance scenario: the full exhaustive N=2 sweep, one
        # class's run killed mid-flight, everything resumed — verdicts
        # and counts identical to a sweep that never died.
        from repro.checker.fast_snapshot import canonical_wiring_classes

        classes = canonical_wiring_classes(2, 2)
        uninterrupted = [
            explore_sharded([1, 2], wiring, jobs=2) for wiring in classes
        ]
        killed = []

        def kill_one_worker():
            if killed:
                return
            import multiprocessing

            victim = multiprocessing.active_children()[0]
            os.kill(victim.pid, signal.SIGKILL)
            killed.append(victim.pid)

        results = []
        for index, wiring in enumerate(classes):
            meta = {**META, "jobs": 2, "class": index}
            directory = tmp_path / f"class-{index:03d}"
            try:
                results.append(explore_sharded(
                    [1, 2], wiring, jobs=2,
                    checkpointer=RunCheckpointer(directory, meta, every=1),
                    _after_checkpoint=kill_one_worker,
                ))
            except RuntimeError:
                results.append(explore_sharded(
                    [1, 2], wiring, jobs=2,
                    checkpointer=RunCheckpointer(directory, meta, every=1),
                ))
        assert killed
        assert [_signature(r) for r in results] == [
            _signature(r) for r in uninterrupted
        ]

    def test_completed_sharded_run_short_circuits(self, tmp_path):
        meta = {**META, "jobs": 2}
        first = explore_sharded(
            [1, 2], WIRING, jobs=2,
            checkpointer=RunCheckpointer(tmp_path, meta, every=1),
        )
        replayed = explore_sharded(
            [1, 2], WIRING, jobs=2,
            checkpointer=RunCheckpointer(tmp_path, meta, every=1),
        )
        assert _signature(replayed) == _signature(first)


# ----------------------------------------------------------------------
# Sweep checkpoint: recorded classes replay, meta mismatches refuse
# ----------------------------------------------------------------------


class TestSweepCheckpoint:
    def test_recorded_classes_replay(self, tmp_path):
        baseline = check_snapshot_classes(2, budget=2000)
        first = check_snapshot_classes(
            2, budget=2000, sweep_dir=str(tmp_path), sweep_meta=META
        )
        replayed = check_snapshot_classes(
            2, budget=2000, sweep_dir=str(tmp_path), sweep_meta=META
        )
        assert [_signature(r) for _, r in first] == [
            _signature(r) for _, r in baseline
        ]
        assert [_signature(r) for _, r in replayed] == [
            _signature(r) for _, r in first
        ]
        sweep = SweepCheckpoint(tmp_path)
        assert len(sweep.results) == len(baseline)

    def test_sweep_meta_mismatch_refused(self, tmp_path):
        check_snapshot_classes(
            2, budget=2000, sweep_dir=str(tmp_path), sweep_meta=META
        )
        with pytest.raises(CheckpointIncompatible, match="budget"):
            check_snapshot_classes(
                2, budget=99, sweep_dir=str(tmp_path),
                sweep_meta={**META, "budget": 99},
            )


# ----------------------------------------------------------------------
# Schema drift: newer/older checkpoints refuse cleanly, never KeyError
# ----------------------------------------------------------------------


class TestSchemaDriftRefusal:
    """Resuming a checkpoint written by a different config schema —
    typically a newer version that records keys this one has never
    heard of — must refuse with a message naming the drifted keys.
    Before the compat layer, every one of these scenarios died with a
    raw ``KeyError``/``TypeError`` deep inside the engine."""

    def test_meta_unknown_key_names_it(self, tmp_path):
        RunCheckpointer(tmp_path, {**META, "quotienting": "orbit-v2"})
        with pytest.raises(
            CheckpointIncompatible,
            match=r"newer config schema\?\): quotienting",
        ):
            RunCheckpointer(tmp_path, META)

    def test_meta_missing_key_names_it(self, tmp_path):
        RunCheckpointer(tmp_path, META)
        with pytest.raises(
            CheckpointIncompatible, match="never recorded: quotienting"
        ):
            RunCheckpointer(tmp_path, {**META, "quotienting": "orbit-v2"})

    def test_missing_counter_refused_not_keyerror(self, tmp_path):
        # A mid-run checkpoint whose counters.json uses a different
        # (renamed) counter key: resume names the missing counter and
        # the keys actually recorded instead of KeyError'ing.
        spec = FastSnapshotSpec([1, 2], WIRING)
        with pytest.raises(KeyboardInterrupt):
            spec.explore(
                checkpointer=_CrashAfterCommit(tmp_path, META, every=500)
            )
        latest = RunCheckpointer(tmp_path, META, every=500).latest()
        path = latest.directory / "counters.json"
        counters = json.loads(path.read_text())
        counters["states_v2"] = counters.pop("admitted")
        path.write_text(json.dumps(counters))
        with pytest.raises(
            CheckpointIncompatible,
            match="records no 'admitted' counter .*recorded:.*states_v2",
        ):
            spec.explore(
                checkpointer=RunCheckpointer(tmp_path, META, every=500)
            )

    def test_result_unknown_field_refused(self, tmp_path):
        spec = FastSnapshotSpec([1, 2], WIRING)
        spec.explore(checkpointer=RunCheckpointer(tmp_path, META, every=500))
        path = tmp_path / "result.json"
        payload = json.loads(path.read_text())
        payload["proof_obligations"] = []
        path.write_text(json.dumps(payload))
        with pytest.raises(
            CheckpointIncompatible,
            match="newer config schema.*proof_obligations.*re-run from a"
                  " fresh",
        ):
            spec.explore(
                checkpointer=RunCheckpointer(tmp_path, META, every=500)
            )

    def test_result_missing_required_field_refused(self, tmp_path):
        spec = FastSnapshotSpec([1, 2], WIRING)
        spec.explore(checkpointer=RunCheckpointer(tmp_path, META, every=500))
        path = tmp_path / "result.json"
        payload = json.loads(path.read_text())
        del payload["states"]
        path.write_text(json.dumps(payload))
        with pytest.raises(
            CheckpointIncompatible, match="record lacks: states"
        ):
            spec.explore(
                checkpointer=RunCheckpointer(tmp_path, META, every=500)
            )

    def test_sweep_row_unknown_field_refused(self, tmp_path):
        check_snapshot_classes(
            2, budget=2000, sweep_dir=str(tmp_path), sweep_meta=META
        )
        path = tmp_path / "classes.json"
        rows = json.loads(path.read_text())
        next(iter(rows.values()))["proof_obligations"] = []
        path.write_text(json.dumps(rows))
        with pytest.raises(
            CheckpointIncompatible, match="newer config schema"
        ):
            check_snapshot_classes(
                2, budget=2000, sweep_dir=str(tmp_path), sweep_meta=META
            )

    def test_cli_resume_newer_schema_exits_cleanly(self, capsys, tmp_path):
        # The end-to-end satellite scenario: `repro check --resume` on a
        # sweep directory whose recorded rows carry fields from a newer
        # schema exits 2 with the named-keys refusal, not a traceback.
        from repro.cli import main

        argv = ["check", "--n", "3", "--budget", "200",
                "--checkpoint-dir", str(tmp_path)]
        assert main(argv) == 0
        capsys.readouterr()
        path = tmp_path / "classes.json"
        rows = json.loads(path.read_text())
        for row in rows.values():
            row["proof_obligations"] = []
        path.write_text(json.dumps(rows))
        assert main(["check", "--n", "3", "--budget", "200",
                     "--resume", str(tmp_path)]) == 2
        out = capsys.readouterr().out
        assert "error:" in out
        assert "newer config schema" in out
        assert "proof_obligations" in out
