"""The examples must run: each script is executed in a subprocess.

The slow, exploration-heavy demo (`model_checking_demo.py`) is exercised
with a reduced budget through its environment knob.
"""

import os
import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def run_example(name, env_extra=None, timeout=240):
    env = dict(os.environ)
    if env_extra:
        env.update(env_extra)
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=timeout,
        env=env,
    )
    assert completed.returncode == 0, completed.stderr[-2000:]
    return completed.stdout


class TestExamplesRun:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "Snapshot task" in out
        assert "agreement on:" in out

    def test_anonymous_cells(self):
        out = run_example("anonymous_cells.py")
        assert "tissue converged on" in out
        assert "roles" in out

    def test_adversarial_coverings(self):
        out = run_example("adversarial_coverings.py")
        assert "complete erasure: True" in out
        assert "p's information survives somewhere: True" in out

    def test_eventual_pattern_demo(self):
        out = run_example("eventual_pattern_demo.py")
        assert "Figure 2, reproduced" in out
        assert "incomparable: True" in out
        assert "DAG+unique-source" in out
        assert "VIOLATION" not in out

    def test_covering_gallery(self):
        out = run_example("covering_gallery.py")
        assert "values erased unread" in out
        assert "at every instant" in out

    @pytest.mark.slow
    def test_model_checking_demo_reduced_budget(self):
        out = run_example(
            "model_checking_demo.py",
            env_extra={"REPRO_MC_BUDGET": "3000"},
            timeout=300,
        )
        assert "safety+wait-freedom" in out or "wait-free=OK" in out or "1. N=2" in out
        assert "EXHAUSTED, no counterexample" in out
        assert "not linearizable" in out
