"""Unit tests for the invariant callbacks in `checker.properties`."""


from repro.checker.properties import (
    SNAPSHOT_SAFETY,
    consensus_agreement_and_validity,
    levels_within_bounds,
    register_views_are_inputs,
    renaming_names_valid,
    snapshot_outputs_comparable,
    snapshot_outputs_valid,
    views_contain_own_input,
)
from repro.checker.system import GlobalState, SystemSpec
from repro.core import ConsensusMachine, RenamingMachine, SnapshotMachine
from repro.core.snapshot import PHASE_DONE, SnapshotState
from repro.core.views import RegisterRecord
from repro.memory.wiring import WiringAssignment


def snapshot_spec(n=2):
    return SystemSpec(
        SnapshotMachine(n), list(range(1, n + 1)),
        WiringAssignment.identity(n, n),
    )


def done_state(view, level=2):
    return SnapshotState(
        view=frozenset(view), level=level, unwritten=frozenset(),
        phase=PHASE_DONE,
    )


def running_state(view):
    return SnapshotState(view=frozenset(view), unwritten=frozenset({0, 1}))


def gs(registers, locals_):
    return GlobalState(registers=tuple(registers), locals=tuple(locals_))


class TestSnapshotInvariants:
    def test_initial_state_satisfies_all(self):
        spec = snapshot_spec()
        state = spec.initial_state()
        for invariant in SNAPSHOT_SAFETY:
            assert invariant(spec, state) is None

    def test_comparable_flags_incomparable_outputs(self):
        spec = snapshot_spec()
        state = gs(
            [RegisterRecord()] * 2,
            [done_state({1}), done_state({2})],
        )
        message = snapshot_outputs_comparable(spec, state)
        assert message is not None and "incomparable" in message

    def test_comparable_accepts_single_output(self):
        spec = snapshot_spec()
        state = gs(
            [RegisterRecord()] * 2,
            [done_state({1}), running_state({2})],
        )
        assert snapshot_outputs_comparable(spec, state) is None

    def test_valid_flags_missing_own_input(self):
        spec = snapshot_spec()
        state = gs(
            [RegisterRecord()] * 2,
            [done_state({2}), running_state({2})],
        )
        message = snapshot_outputs_valid(spec, state)
        assert message is not None and "own input" in message

    def test_valid_flags_foreign_values(self):
        spec = snapshot_spec()
        state = gs(
            [RegisterRecord()] * 2,
            [done_state({1, 99}), running_state({2})],
        )
        message = snapshot_outputs_valid(spec, state)
        assert message is not None and "non-input" in message

    def test_views_contain_own_input_flags_loss(self):
        spec = snapshot_spec()
        state = gs(
            [RegisterRecord()] * 2,
            [running_state({2}), running_state({2})],
        )
        assert views_contain_own_input(spec, state) is not None

    def test_levels_within_bounds_flags_overflow(self):
        spec = snapshot_spec()
        bad = SnapshotState(
            view=frozenset({1}), level=99, unwritten=frozenset({0, 1})
        )
        state = gs([RegisterRecord()] * 2, [bad, running_state({2})])
        message = levels_within_bounds(spec, state)
        assert message is not None and "99" in message

    def test_levels_checks_registers_too(self):
        spec = snapshot_spec()
        state = gs(
            [RegisterRecord(frozenset({1}), 42), RegisterRecord()],
            [running_state({1}), running_state({2})],
        )
        assert levels_within_bounds(spec, state) is not None

    def test_register_views_are_inputs_flags_strays(self):
        spec = snapshot_spec()
        state = gs(
            [RegisterRecord(frozenset({7}), 0), RegisterRecord()],
            [running_state({1}), running_state({2})],
        )
        assert register_views_are_inputs(spec, state) is not None


class TestConsensusInvariant:
    def spec(self):
        return SystemSpec(
            ConsensusMachine(2), ["x", "y"], WiringAssignment.identity(2, 2)
        )

    def test_initial_ok(self):
        spec = self.spec()
        assert consensus_agreement_and_validity(
            spec, spec.initial_state()
        ) is None

    def test_disagreement_flagged(self):
        from repro.core.consensus import ConsensusState

        spec = self.spec()
        inner = spec.machine.snapshot_machine.initial_state("ignored")
        locals_ = (
            ConsensusState(inner=inner, preference="x", timestamp=0,
                           decision="x"),
            ConsensusState(inner=inner, preference="y", timestamp=0,
                           decision="y"),
        )
        state = gs([RegisterRecord()] * 2, locals_)
        message = consensus_agreement_and_validity(spec, state)
        assert message is not None and "disagreement" in message

    def test_unproposed_value_flagged(self):
        from repro.core.consensus import ConsensusState

        spec = self.spec()
        inner = spec.machine.snapshot_machine.initial_state("ignored")
        locals_ = (
            ConsensusState(inner=inner, preference="z", timestamp=0,
                           decision="z"),
            ConsensusState(inner=inner, preference="y", timestamp=0),
        )
        state = gs([RegisterRecord()] * 2, locals_)
        message = consensus_agreement_and_validity(spec, state)
        assert message is not None and "never proposed" in message


class TestRenamingInvariant:
    def spec(self, inputs=("a", "b")):
        return SystemSpec(
            RenamingMachine(2), list(inputs), WiringAssignment.identity(2, 2)
        )

    def renaming_state(self, my_id, name):
        from repro.core.renaming import RenamingState

        inner = SnapshotState(
            view=frozenset({my_id}), level=2, unwritten=frozenset(),
            phase=PHASE_DONE,
        )
        return RenamingState(inner=inner, my_id=my_id, name=name)

    def test_cross_group_collision_flagged(self):
        spec = self.spec()
        state = gs(
            [RegisterRecord()] * 2,
            [self.renaming_state("a", 2), self.renaming_state("b", 2)],
        )
        message = renaming_names_valid(spec, state)
        assert message is not None and "share" in message

    def test_same_group_sharing_allowed(self):
        spec = self.spec(("g", "g"))
        state = gs(
            [RegisterRecord()] * 2,
            [self.renaming_state("g", 1), self.renaming_state("g", 1)],
        )
        assert renaming_names_valid(spec, state) is None

    def test_out_of_range_name_flagged(self):
        spec = self.spec()
        state = gs(
            [RegisterRecord()] * 2,
            [self.renaming_state("a", 99), self.renaming_state("b", 1)],
        )
        message = renaming_names_valid(spec, state)
        assert message is not None and "outside" in message
