"""Tests for the global transition system and its simulator conformance."""

import random

import pytest

from repro.api import build_runner
from repro.checker import SystemSpec
from repro.core import SnapshotMachine, WriteScanMachine
from repro.memory.wiring import WiringAssignment
from repro.sim.ops import Read, Write


class TestBasics:
    def test_initial_state(self):
        machine = SnapshotMachine(2)
        spec = SystemSpec(machine, [1, 2], WiringAssignment.identity(2, 2))
        state = spec.initial_state()
        assert state.registers == (machine.register_initial_value(),) * 2
        assert [local.view for local in state.locals] == [
            frozenset({1}), frozenset({2})
        ]

    def test_input_count_must_match_wiring(self):
        with pytest.raises(ValueError):
            SystemSpec(
                SnapshotMachine(2), [1, 2, 3], WiringAssignment.identity(2, 2)
            )

    def test_successor_count_initial(self):
        """Initially each processor can write any of the registers."""
        spec = SystemSpec(
            SnapshotMachine(2), [1, 2], WiringAssignment.identity(2, 2)
        )
        successors = list(spec.successors(spec.initial_state()))
        assert len(successors) == 4  # 2 processors x 2 register choices

    def test_actions_carry_physical_index(self):
        from repro.memory.wiring import Wiring

        wiring = WiringAssignment([Wiring.identity(2), Wiring.rotation(2, 1)])
        spec = SystemSpec(SnapshotMachine(2), [1, 2], wiring)
        for action, _ in spec.successors(spec.initial_state()):
            assert action.physical == wiring[action.pid].to_physical(action.op.reg)

    def test_write_updates_register(self):
        spec = SystemSpec(
            SnapshotMachine(2), [1, 2], WiringAssignment.identity(2, 2)
        )
        state = spec.initial_state()
        action, successor = spec.apply(state, 0, Write(1, "record"))
        assert successor.registers[1] == "record"
        assert successor.registers[0] == state.registers[0]

    def test_read_leaves_registers_untouched(self):
        machine = SnapshotMachine(2)
        spec = SystemSpec(machine, [1, 2], WiringAssignment.identity(2, 2))
        state = spec.initial_state()
        # Put p0 into scanning first.
        _, state = spec.apply(state, 0, machine.enabled_ops(state.locals[0])[0])
        _, successor = spec.apply(state, 0, Read(0))
        assert successor.registers == state.registers

    def test_outputs_and_termination_queries(self):
        spec = SystemSpec(
            SnapshotMachine(1, n_registers=1), [1], WiringAssignment.identity(1, 1)
        )
        state = spec.initial_state()
        assert spec.outputs(state) == {}
        assert not spec.all_terminated(state)
        # One processor, one register: solo climb to level 1.
        for _ in range(100):
            successors = list(spec.successors(state))
            if not successors:
                break
            state = successors[0][1]
        assert spec.all_terminated(state)
        assert spec.outputs(state) == {0: frozenset({1})}


class TestSimulatorConformance:
    """The spec and the runner must agree step for step — they share the
    machine code, so divergence would mean the wiring or result plumbing
    differs."""

    @pytest.mark.parametrize("seed", range(10))
    def test_same_schedule_same_outcome(self, seed):
        rng = random.Random(seed)
        n = 3
        machine = SnapshotMachine(n)
        wiring = WiringAssignment.random(n, n, rng)

        runner = build_runner(machine, [1, 2, 3], seed=seed, wiring=wiring)
        result = runner.run(200_000)
        assert result.all_terminated

        # Replay through the spec: follow the recorded schedule, always
        # choosing the op the runner's policy chose (recover it from the
        # trace events).
        spec = SystemSpec(machine, [1, 2, 3], wiring)
        state = spec.initial_state()
        events = [e for e in result.trace if hasattr(e, "local_index")]
        for event in events:
            from repro.memory.trace import WriteEvent

            if isinstance(event, WriteEvent):
                op = Write(event.local_index, event.value)
            else:
                op = Read(event.local_index)
            _, state = spec.apply(state, event.pid, op)
        assert spec.outputs(state) == result.outputs
        assert state.registers == runner.memory.snapshot()

    def test_write_scan_spec_never_terminates(self):
        machine = WriteScanMachine(2)
        spec = SystemSpec(machine, [1, 2], WiringAssignment.identity(2, 2))
        state = spec.initial_state()
        for _ in range(500):
            successors = list(spec.successors(state))
            assert successors
            state = successors[0][1]
        assert spec.outputs(state) == {}
