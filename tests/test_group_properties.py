"""Property tests for the group-solvability machinery itself.

Key meta-theorems of Definition 3.4, checked mechanically:

- with all-distinct inputs (every group a singleton), group solvability
  coincides with plain task validity;
- adding a duplicate of an existing (pid, output) pair never changes
  the verdict (samples are deduplicated by output);
- the number of output samples is the product of per-group distinct
  output counts.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.tasks import (
    ConsensusTask,
    SnapshotTask,
    check_group_solution,
    groups_from_inputs,
    iter_output_samples,
)


def snapshot_assignments():
    """Random (inputs, outputs) over a small universe — not necessarily
    valid, so both verdicts get exercised."""
    return st.integers(min_value=0, max_value=2**32).map(_random_assignment)


def _random_assignment(seed):
    rng = random.Random(seed)
    n = rng.randint(1, 5)
    universe = list(range(1, rng.randint(2, 5)))
    inputs = {pid: rng.choice(universe) for pid in range(n)}
    outputs = {}
    for pid in range(n):
        size = rng.randint(1, len(universe))
        out = set(rng.sample(universe, size))
        out.add(inputs[pid])
        outputs[pid] = frozenset(out)
    return inputs, outputs


class TestSingletonGroupEquivalence:
    @given(st.integers(min_value=0, max_value=2**32))
    @settings(max_examples=100, deadline=None)
    def test_distinct_inputs_reduce_to_plain_task(self, seed):
        """Every group a singleton ⇒ exactly one output sample ⇒ the
        group check equals the plain task check (over group ids)."""
        rng = random.Random(seed)
        n = rng.randint(1, 5)
        inputs = {pid: pid + 1 for pid in range(n)}  # all distinct
        outputs = {}
        for pid in range(n):
            out = set(rng.sample(range(1, n + 1), rng.randint(1, n)))
            out.add(pid + 1)
            outputs[pid] = frozenset(out)
        task = SnapshotTask()
        group_verdict = check_group_solution(task, inputs, outputs).valid
        plain_assignment = {inputs[pid]: outputs[pid] for pid in range(n)}
        assert group_verdict == task.is_valid(plain_assignment)

    @given(st.integers(min_value=0, max_value=2**32))
    @settings(max_examples=60, deadline=None)
    def test_consensus_variant(self, seed):
        rng = random.Random(seed)
        n = rng.randint(1, 4)
        inputs = {pid: f"g{pid}" for pid in range(n)}
        decided = rng.choice([f"g{i}" for i in range(n)] + ["zz"])
        outputs = {pid: decided for pid in range(n)}
        task = ConsensusTask()
        group_verdict = check_group_solution(task, inputs, outputs).valid
        plain = {inputs[pid]: decided for pid in range(n)}
        assert group_verdict == task.is_valid(plain)


class TestSampleAlgebra:
    @given(snapshot_assignments())
    @settings(max_examples=80, deadline=None)
    def test_sample_count_is_product_of_distinct_outputs(self, assignment):
        inputs, outputs = assignment
        groups = groups_from_inputs(inputs)
        expected = 1
        for members in groups.values():
            distinct = {outputs[pid] for pid in members if pid in outputs}
            if distinct:
                expected *= len(distinct)
        count = sum(1 for _ in iter_output_samples(groups, outputs))
        assert count == expected

    @given(snapshot_assignments())
    @settings(max_examples=80, deadline=None)
    def test_duplicate_member_does_not_change_verdict(self, assignment):
        inputs, outputs = assignment
        task = SnapshotTask()
        before = check_group_solution(task, inputs, outputs).valid
        # Clone an arbitrary member (same input, same output).
        pid = min(inputs)
        clone = max(inputs) + 1
        inputs2 = {**inputs, clone: inputs[pid]}
        outputs2 = {**outputs, clone: outputs[pid]}
        after = check_group_solution(task, inputs2, outputs2).valid
        assert before == after

    @given(snapshot_assignments())
    @settings(max_examples=80, deadline=None)
    def test_verdict_matches_brute_force(self, assignment):
        """The checker agrees with a direct all-samples enumeration."""
        inputs, outputs = assignment
        task = SnapshotTask()
        verdict = check_group_solution(task, inputs, outputs).valid
        groups = groups_from_inputs(inputs)
        brute = all(
            task.is_valid(sample)
            for sample in iter_output_samples(groups, outputs)
        )
        assert verdict == brute

    def test_invalid_sample_found_even_when_rare(self):
        """One bad combination among many good ones is still found."""
        inputs = {0: "A", 1: "A", 2: "B", 3: "B"}
        outputs = {
            0: frozenset({"A"}),
            1: frozenset({"A", "B"}),
            2: frozenset({"A", "B"}),
            3: frozenset({"B"}),  # with output 0 -> incomparable pair
        }
        result = check_group_solution(SnapshotTask(), inputs, outputs)
        assert not result.valid
        assert result.counterexample == {
            "A": frozenset({"A"}), "B": frozenset({"B"})
        }
