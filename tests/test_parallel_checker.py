"""The parallel exploration engine and the fingerprint state store.

Three contracts, each load-bearing for experiment E4's verdicts:

- **conformance** — the class-parallel sweep, the frontier-sharded
  engine, and both fingerprint modes report exactly what the serial
  object-encoded explorer reports (states/transitions/verdict on
  exhaustive runs; verdicts on budgeted ones);
- **determinism** — two runs with the same ``jobs`` are identical, so
  parallel reports are reproducible artifacts, not races;
- **budget semantics** — ``max_states`` caps admissions exactly, the
  outer loop short-circuits, and the dropped work is visible as
  ``truncated_transitions`` instead of silently vanishing.
"""

import pytest

from repro.checker import Explorer, SystemSpec
from repro.checker.fast_snapshot import (
    FastSnapshotSpec,
    _ChunkedIntQueue,
    canonical_wiring_classes,
)
from repro.checker.fingerprint import (
    collision_probability,
    fingerprint_int,
    fingerprint_state,
    splitmix64,
)
from repro.checker.parallel import (
    check_snapshot_classes,
    explore_sharded,
    ordered_parallel_map,
)
from repro.checker.properties import SNAPSHOT_SAFETY
from repro.core import SnapshotMachine
from repro.memory.wiring import WiringAssignment

#: Class 1 of ``canonical_wiring_classes(3, 3)`` — the single-class
#: workload for sharded/determinism tests.
N3_CLASS = ((0, 1, 2), (0, 1, 2), (1, 2, 0))

_SEEDED_MESSAGE = "seeded violation: a view saw every input"


def _square(value):  # module-level: pool workers must pickle it
    return value * value


def _seed_fast_violation(monkeypatch):
    """Flag any state where some view already contains every input.

    The snapshot algorithm is actually safe, so violation-path coverage
    needs a seeded fault; a full view appears a few BFS layers in, well
    inside every budget used here.  Patching the class before any
    worker starts means fork-started workers inherit the seeded check;
    skip where fork isn't available (the parallel engines would run
    unpatched).
    """
    import multiprocessing

    try:
        multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        pytest.skip("seeded-violation injection requires fork workers")
    original = FastSnapshotSpec.check_outputs

    def seeded(self, state):
        if any(
            self.view_of(state, pid) == self.k_mask
            for pid in range(self.n)
        ):
            return _SEEDED_MESSAGE
        return original(self, state)

    monkeypatch.setattr(FastSnapshotSpec, "check_outputs", seeded)


def _seeded_generic_invariant(spec, state):
    if spec.outputs(state):
        return _SEEDED_MESSAGE
    return None


def _stats(result):
    return (result.states, result.transitions, result.ok, result.complete)


# ----------------------------------------------------------------------
# Fingerprint primitives
# ----------------------------------------------------------------------

class TestFingerprintPrimitives:
    def test_splitmix64_is_a_64_bit_bijection_sample(self):
        digests = {splitmix64(value) for value in range(2_000)}
        assert len(digests) == 2_000  # no collisions on the sample
        assert all(0 <= digest < 2 ** 64 for digest in digests)
        assert splitmix64(42) == splitmix64(42)

    def test_fingerprint_int_folds_wide_ints(self):
        wide = (1 << 200) | (1 << 64) | 7
        assert fingerprint_int(wide) == fingerprint_int(wide)
        assert fingerprint_int(wide) != fingerprint_int(wide ^ 1)
        assert 0 <= fingerprint_int(wide) < 2 ** 64
        # Limb-folded, so equal low limbs with different high limbs differ.
        assert fingerprint_int(7) != fingerprint_int((1 << 64) | 7)

    def test_fingerprint_state_stable_within_process(self):
        spec = SystemSpec(
            SnapshotMachine(2), [1, 2], WiringAssignment.identity(2, 2)
        )
        state = spec.initial_state()
        assert fingerprint_state(state) == fingerprint_state(state)

    def test_collision_probability_birthday_shape(self):
        assert collision_probability(0) == 0.0
        assert collision_probability(1) == 0.0
        million = collision_probability(10 ** 6)
        assert 0 < million < 1e-6
        assert million < collision_probability(10 ** 8)


# ----------------------------------------------------------------------
# Class-grain conformance (check_snapshot_classes)
# ----------------------------------------------------------------------

class TestClassGrainConformance:
    def test_n2_parallel_and_fingerprint_match_serial_generic(self):
        parallel_rows = check_snapshot_classes(2, jobs=2)
        fingerprint_rows = check_snapshot_classes(2, jobs=1, fingerprint=True)
        assert len(parallel_rows) == len(fingerprint_rows) == 2
        for (wiring, result), (_, fp_result) in zip(
            parallel_rows, fingerprint_rows
        ):
            spec = SystemSpec(
                SnapshotMachine(2), [1, 2],
                WiringAssignment.from_permutations(wiring),
            )
            generic = Explorer(spec, SNAPSHOT_SAFETY).run()
            assert generic.ok and result.ok and fp_result.ok
            assert (generic.states, generic.transitions) == (
                result.states, result.transitions
            ) == (fp_result.states, fp_result.transitions)

    def test_n3_budgeted_sweep_identical_across_jobs(self):
        serial = check_snapshot_classes(3, budget=4_000, jobs=1)
        parallel = check_snapshot_classes(3, budget=4_000, jobs=2)
        assert [(w, _stats(r)) for w, r in serial] == [
            (w, _stats(r)) for w, r in parallel
        ]
        assert all(not r.complete and r.states == 4_000 for _, r in serial)

    def test_n3_seeded_violation_verdicts_agree(self, monkeypatch):
        _seed_fast_violation(monkeypatch)
        serial = check_snapshot_classes(3, budget=30_000, jobs=1)
        parallel = check_snapshot_classes(3, budget=30_000, jobs=2)
        fingerprints = check_snapshot_classes(
            3, budget=30_000, jobs=2, fingerprint=True
        )
        verdicts = [(r.ok, r.violation) for _, r in serial]
        assert all(not ok for ok, _ in verdicts)
        assert all(v == _SEEDED_MESSAGE for _, v in verdicts)
        assert verdicts == [(r.ok, r.violation) for _, r in parallel]
        assert verdicts == [(r.ok, r.violation) for _, r in fingerprints]


# ----------------------------------------------------------------------
# Frontier-sharded conformance (explore_sharded)
# ----------------------------------------------------------------------

class TestShardedConformance:
    @pytest.mark.parametrize(
        "wiring", canonical_wiring_classes(2, 2), ids=str
    )
    def test_n2_exhaustive_partition_invariant(self, wiring):
        serial = FastSnapshotSpec([1, 2], wiring).explore()
        sharded = explore_sharded([1, 2], wiring, jobs=2)
        fp_sharded = explore_sharded([1, 2], wiring, jobs=2, fingerprint=True)
        assert serial.complete
        assert _stats(serial) == _stats(sharded) == _stats(fp_sharded)

    def test_seeded_violation_verdict_matches_serial(self, monkeypatch):
        _seed_fast_violation(monkeypatch)
        wiring = canonical_wiring_classes(2, 2)[0]
        serial = FastSnapshotSpec([1, 2], wiring).explore()
        sharded = explore_sharded([1, 2], wiring, jobs=2)
        assert not serial.ok and not sharded.ok
        assert serial.violation == sharded.violation == _SEEDED_MESSAGE

    def test_budget_stops_at_layer_boundary_with_truncation(self):
        result = explore_sharded([1, 2, 3], N3_CLASS, jobs=2, max_states=2_000)
        assert not result.complete
        assert result.states >= 2_000
        assert result.truncated_transitions > 0
        assert result.ok


# ----------------------------------------------------------------------
# Determinism: same jobs, same answer
# ----------------------------------------------------------------------

class TestDeterminism:
    def test_two_jobs4_class_sweeps_identical(self):
        first = check_snapshot_classes(3, budget=3_000, jobs=4)
        second = check_snapshot_classes(3, budget=3_000, jobs=4)
        assert [(w, _stats(r)) for w, r in first] == [
            (w, _stats(r)) for w, r in second
        ]

    def test_two_jobs4_sharded_runs_identical(self):
        first = explore_sharded([1, 2, 3], N3_CLASS, jobs=4, max_states=3_000)
        second = explore_sharded([1, 2, 3], N3_CLASS, jobs=4, max_states=3_000)
        assert _stats(first) == _stats(second)
        assert first.truncated_transitions == second.truncated_transitions


# ----------------------------------------------------------------------
# Explorer fingerprint mode (the generic object-encoded engine)
# ----------------------------------------------------------------------

class TestExplorerFingerprintMode:
    def _spec(self):
        return SystemSpec(
            SnapshotMachine(2), [1, 2], WiringAssignment.identity(2, 2)
        )

    def test_counts_match_full_mode_exhaustively(self):
        spec = self._spec()
        full = Explorer(spec, SNAPSHOT_SAFETY).run()
        lean = Explorer(spec, SNAPSHOT_SAFETY, fingerprint=True).run()
        assert full.ok and lean.ok
        assert (full.states, full.transitions, full.depth) == (
            lean.states, lean.transitions, lean.depth
        )

    def test_keep_edges_is_rejected(self):
        with pytest.raises(ValueError):
            Explorer(self._spec(), keep_edges=True, fingerprint=True)

    def test_counterexample_reconstructed_minimal_and_replayable(self):
        spec = self._spec()
        invariants = (_seeded_generic_invariant,)
        full = Explorer(spec, invariants).run()
        lean = Explorer(spec, invariants, fingerprint=True).run()
        assert full.violation is not None and lean.violation is not None
        assert full.violation.message == lean.violation.message
        # Same minimal length as the full-table path (BFS on both sides).
        assert len(lean.violation.path) == len(full.violation.path)
        # The reconstructed path replays to the reported violating state.
        state = spec.initial_state()
        for action in lean.violation.path:
            matches = [
                successor
                for step, successor in spec.successors(state)
                if step == action
            ]
            assert len(matches) == 1
            state = matches[0]
        assert state == lean.violation.state
        assert _seeded_generic_invariant(spec, state) is not None

    def test_budget_cap_and_truncation_counter(self):
        spec = self._spec()
        full = Explorer(spec, SNAPSHOT_SAFETY, max_states=100).run()
        lean = Explorer(
            spec, SNAPSHOT_SAFETY, max_states=100, fingerprint=True
        ).run()
        for result in (full, lean):
            assert result.states == 100
            assert not result.complete
            assert result.truncated_transitions > 0


# ----------------------------------------------------------------------
# Fast-engine budget semantics + the chunked frontier queue
# ----------------------------------------------------------------------

class TestFastBudgetSemantics:
    def test_truncation_visible_and_mode_invariant(self):
        spec = FastSnapshotSpec([1, 2, 3], N3_CLASS)
        full = spec.explore(max_states=2_000)
        lean = spec.explore(max_states=2_000, fingerprint=True)
        for result in (full, lean):
            assert result.states == 2_000
            assert not result.complete
            assert result.truncated_transitions > 0
        assert full.transitions == lean.transitions
        assert full.truncated_transitions == lean.truncated_transitions

    def test_fingerprint_rejects_wait_freedom(self):
        spec = FastSnapshotSpec([1, 2], canonical_wiring_classes(2, 2)[0])
        with pytest.raises(ValueError):
            spec.explore(check_wait_freedom=True, fingerprint=True)


class TestChunkedIntQueue:
    def test_fifo_across_chunk_boundaries(self):
        queue = _ChunkedIntQueue(chunk_size=16)
        for value in range(1_000):
            queue.push(value)
        assert [queue.pop() for _ in range(1_000)] == list(range(1_000))
        assert queue.pop() == -1

    def test_interleaved_push_pop(self):
        queue = _ChunkedIntQueue(chunk_size=4)
        queue.push(10)
        queue.push(11)
        assert queue.pop() == 10
        for value in range(12, 30):
            queue.push(value)
        assert queue.pop() == 11
        assert [queue.pop() for _ in range(18)] == list(range(12, 30))
        assert queue.pop() == -1


# ----------------------------------------------------------------------
# Pool plumbing
# ----------------------------------------------------------------------

class TestOrderedParallelMap:
    def test_preserves_input_order(self):
        values = list(range(20))
        assert ordered_parallel_map(_square, values, jobs=3) == [
            value * value for value in values
        ]

    def test_serial_fallback_for_single_job(self):
        assert ordered_parallel_map(_square, [3, 4], jobs=1) == [9, 16]
