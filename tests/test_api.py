"""Tests for the high-level convenience API (`repro.api`)."""

import pytest

from repro.api import (
    build_runner,
    run_consensus,
    run_renaming,
    run_snapshot,
    run_write_scan,
)
from repro.core import SnapshotMachine
from repro.memory.wiring import WiringAssignment
from repro.sim import RoundRobinScheduler


class TestBuildRunner:
    def test_seed_none_requires_explicit_wiring_and_scheduler(self):
        machine = SnapshotMachine(2)
        with pytest.raises(ValueError):
            build_runner(machine, [1, 2], seed=None)
        runner = build_runner(
            machine, [1, 2], seed=None,
            wiring=WiringAssignment.identity(2, 2),
            scheduler=RoundRobinScheduler(),
        )
        assert runner.memory.n_processors == 2

    def test_register_count_from_machine(self):
        machine = SnapshotMachine(3, n_registers=5)
        runner = build_runner(machine, [1, 2, 3], seed=0)
        assert runner.memory.n_registers == 5

    def test_explicit_wiring_respected(self):
        machine = SnapshotMachine(2)
        wiring = WiringAssignment.identity(2, 2)
        runner = build_runner(machine, [1, 2], seed=4, wiring=wiring)
        assert runner.memory.wiring == wiring

    def test_processes_carry_inputs_in_order(self):
        machine = SnapshotMachine(3)
        runner = build_runner(machine, ["x", "y", "z"], seed=0)
        assert [p.my_input for p in runner.processes] == ["x", "y", "z"]


class TestRunHelpers:
    def test_run_snapshot_defaults(self):
        result = run_snapshot([1, 2, 3])
        assert result.all_terminated
        assert set(result.outputs) == {0, 1, 2}

    def test_run_snapshot_level_target(self):
        result = run_snapshot([1, 2, 3], seed=1, level_target=2)
        assert result.all_terminated

    def test_run_snapshot_register_override(self):
        result = run_snapshot([1, 2], seed=1, n_registers=5)
        assert result.all_terminated
        assert result.trace.writes()[0].physical_index < 5

    def test_run_renaming(self):
        result = run_renaming(["a", "b"], seed=2)
        assert set(result.outputs.values()) <= {1, 2, 3}

    def test_run_consensus(self):
        result = run_consensus(["x", "x"], seed=3)
        assert set(result.outputs.values()) == {"x"}

    def test_run_write_scan_step_budget(self):
        result = run_write_scan([1, 2], steps=57, seed=0)
        assert result.steps == 57
        assert not result.all_terminated  # the loop never terminates

    def test_run_write_scan_lasso(self):
        from repro.sim import PeriodicScheduler

        result = run_write_scan(
            [1, 2], steps=100_000, seed=None,
            wiring=WiringAssignment.identity(2, 2),
            scheduler=PeriodicScheduler([0, 1]),
            detect_lasso=True,
        )
        assert result.lasso is not None

    def test_reproducibility_across_helpers(self):
        for helper, args in [
            (run_snapshot, ([1, 2, 3],)),
            (run_renaming, (["a", "b", "a"],)),
            (run_consensus, (["x", "y"],)),
        ]:
            first = helper(*args, seed=99)
            second = helper(*args, seed=99)
            assert first.outputs == second.outputs
            assert first.schedule == second.schedule

    def test_inputs_of_any_hashable_type(self):
        result = run_snapshot([("tuple", 1), "string", 42], seed=5)
        assert result.all_terminated
        for pid, view in result.outputs.items():
            assert [("tuple", 1), "string", 42][pid] in view
