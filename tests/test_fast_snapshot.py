"""Conformance tests: the fast bitmask spec vs the generic machine.

The fast explorer is the tool behind experiment E4's N=3 sweep; these
tests establish that whatever it certifies holds for the real
implementation:

- identical reachable-state-graph sizes for N=2 (all wirings),
- identical outcomes on shared random walks for N=3,
- identical safety verdicts on both.
"""

import random

import pytest

from repro.checker import Explorer, SystemSpec
from repro.checker.fast_snapshot import (
    FastSnapshotSpec,
    canonical_wiring_classes,
)
from repro.checker.properties import SNAPSHOT_SAFETY
from repro.core import SnapshotMachine
from repro.memory.wiring import WiringAssignment, enumerate_wiring_assignments


class TestExactGraphConformanceN2:
    @pytest.mark.parametrize(
        "wiring", list(enumerate_wiring_assignments(2, 2)),
        ids=lambda w: str(w.permutations()),
    )
    def test_state_and_transition_counts_match(self, wiring):
        spec = SystemSpec(SnapshotMachine(2), [1, 2], wiring)
        generic = Explorer(spec, SNAPSHOT_SAFETY).run()
        fast = FastSnapshotSpec([1, 2], wiring.permutations())
        result = fast.explore(check_wait_freedom=True)
        assert generic.ok and result.ok
        assert (generic.states, generic.transitions) == (
            result.states, result.transitions
        )

    def test_level_target_variant_matches_too(self):
        wiring = WiringAssignment.identity(2, 2)
        spec = SystemSpec(SnapshotMachine(2, level_target=1), [1, 2], wiring)
        generic = Explorer(spec, SNAPSHOT_SAFETY).run()
        fast = FastSnapshotSpec([1, 2], wiring.permutations(), level_target=1)
        result = fast.explore()
        assert (generic.states, generic.transitions) == (
            result.states, result.transitions
        )


class TestRandomWalkConformanceN3:
    @pytest.mark.parametrize("seed", range(8))
    def test_shared_walk_same_outputs(self, seed):
        rng = random.Random(seed)
        wiring = WiringAssignment.random(3, 3, rng)
        machine = SnapshotMachine(3)
        spec = SystemSpec(machine, [1, 2, 3], wiring)
        fast = FastSnapshotSpec([1, 2, 3], wiring.permutations())

        state = spec.initial_state()
        fast_state = fast.initial_state()
        walk_rng = random.Random(seed * 7 + 1)
        for _ in range(5_000):
            generic_succ = list(spec.successors(state))
            fast_succ = fast.successors(fast_state)
            assert len(generic_succ) == len(fast_succ)
            if not generic_succ:
                break
            index = walk_rng.randrange(len(generic_succ))
            # Both successor lists enumerate (pid ascending, register
            # ascending), so index-aligned choices follow the same step.
            _, state = generic_succ[index]
            _, fast_state = fast_succ[index]
            generic_outputs = spec.outputs(state)
            fast_outputs = fast.output_views(fast_state)
            assert generic_outputs == fast_outputs

    def test_view_decoding_matches(self):
        fast = FastSnapshotSpec([1, 2, 3], [(0, 1, 2)] * 3)
        state = fast.initial_state()
        for pid in range(3):
            assert fast.view_of(state, pid) == fast.input_masks[pid]


class TestFastSafetyChecks:
    def test_group_inputs_share_bits(self):
        fast = FastSnapshotSpec(["g", "g", "h"], [(0, 1, 2)] * 3)
        assert fast.k == 2
        assert fast.input_masks[0] == fast.input_masks[1]

    def test_check_outputs_flags_incomparable(self):
        fast = FastSnapshotSpec([1, 2], [(0, 1)] * 2)
        # Forge a state with done processors holding views {1} and {2}.
        local0 = fast.pack_local(0b01, 2, 0, 2, 0, 1, fast.ml_sentinel)
        local1 = fast.pack_local(0b10, 2, 0, 2, 0, 1, fast.ml_sentinel)
        state = (local0 << fast.local_offsets[0]) | (local1 << fast.local_offsets[1])
        assert fast.check_outputs(state) is not None

    def test_check_outputs_flags_missing_self(self):
        fast = FastSnapshotSpec([1, 2], [(0, 1)] * 2)
        local0 = fast.pack_local(0b10, 2, 0, 2, 0, 1, fast.ml_sentinel)
        state = local0 << fast.local_offsets[0]
        assert "own input" in fast.check_outputs(state)

    def test_check_outputs_accepts_chain(self):
        fast = FastSnapshotSpec([1, 2], [(0, 1)] * 2)
        local0 = fast.pack_local(0b01, 2, 0, 2, 0, 1, fast.ml_sentinel)
        local1 = fast.pack_local(0b11, 2, 0, 2, 0, 1, fast.ml_sentinel)
        state = (local0 << fast.local_offsets[0]) | (local1 << fast.local_offsets[1])
        assert fast.check_outputs(state) is None


class TestCanonicalWiringClasses:
    def test_n2_has_two_classes(self):
        assert len(canonical_wiring_classes(2, 2)) == 2

    def test_n3_has_ten_classes(self):
        classes = canonical_wiring_classes(3, 3)
        assert len(classes) == 10

    def test_first_wiring_is_identity_in_every_class(self):
        for wiring in canonical_wiring_classes(3, 3):
            assert wiring[0] == (0, 1, 2)

    def test_classes_cover_all_assignments(self):
        """Every raw assignment reduces (via relabelling + processor
        permutation) to one of the canonical classes."""
        import itertools

        classes = set(canonical_wiring_classes(2, 2))
        perms = [tuple(p) for p in itertools.permutations(range(2))]

        def canonical(assignment):
            candidates = []
            for order in itertools.permutations(range(2)):
                reordered = [assignment[i] for i in order]
                first = reordered[0]
                inverse = tuple(sorted(range(2), key=lambda i: first[i]))
                candidates.append(
                    tuple(
                        tuple(inverse[w[i]] for i in range(2)) for w in reordered
                    )
                )
            return min(candidates)

        for assignment in itertools.product(perms, repeat=2):
            assert canonical(list(assignment)) in classes

    def test_wiring_mismatch_rejected(self):
        with pytest.raises(ValueError):
            FastSnapshotSpec([1, 2], [(0, 1), (0, 1, 2)])
