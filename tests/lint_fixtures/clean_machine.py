"""Machine-role code using only sanctioned patterns (anonlint fixture).

Linting this module must yield zero findings: pid flows into wiring
indirection only, membership tests are bookkeeping, diagnostics may
name identities, and the loop names its progress guard.
"""
# anonlint: role=machine


def through_wiring(pid, wiring):
    return wiring[pid]


def through_permutation_call(pid, to_physical, index):
    return to_physical(pid, index)


def membership_bookkeeping(pid, outputs):
    return pid in outputs


def diagnostic_message(pid, view):
    return f"processor {pid} holds {view!r}"


def level_guarded_scan(collect, level_target):
    while True:
        level = collect()
        if level >= level_target:
            return level
