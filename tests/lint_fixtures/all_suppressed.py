"""One suppressed instance of every rule (anonlint fixture).

Linting this module must yield zero *active* findings: each seeded
violation carries a suppression, including one ``disable-next-line``
form.
"""
# anonlint: role=machine


def permutation_invariant(fn):
    fn.permutation_invariant = True
    return fn


def branch_on_identity(pid, view):
    if pid == 0:  # anonlint: disable=ANON002
        return view
    return None


def direct_register_subscript(memory, index):
    return memory[index]  # anonlint: disable=WIRE001


def direct_memory_api(memory, index):
    # anonlint: disable-next-line=WIRE002
    return memory.read(0, index)


def unmarked_property(spec, state):  # anonlint: disable=INVAR001
    return None


@permutation_invariant
def repr_tie_break(spec, state):
    leaders = sorted(state.candidates, key=repr)
    return leaders[0]  # anonlint: disable=INVAR002v2


def unguarded_double_collect(collect):
    previous = collect()
    while True:  # anonlint: disable=WF001
        current = collect()
        if current == previous:
            return current
        previous = current


def bounded_probe(collect, attempts_cap):
    attempts = 0
    while attempts < attempts_cap:  # anonlint: disable=WF002
        collect()
        attempts += 1
    return attempts


FIXTURE_SAFETY = (unmarked_property,)
