"""Seeded ANON001 violations (anonlint fixture; parsed, never imported).

Every function below uses a processor identity the way anonymous
machine code must not; the role marker makes this module machine-scope
despite living under ``tests/``.
"""
# anonlint: role=machine


def branch_on_identity(pid, view):
    if pid:
        return view
    return None


def compare_identities(pid, other):
    return pid == other


def write_by_identity(pid, my_input, Write):
    yield Write(pid, my_input)


def index_by_identity(pid, table):
    return table[pid]
