"""Seeded ANON002 violations (anonlint fixture; parsed, never imported).

Every function below lets a processor identity *flow* somewhere
anonymous machine code must not act on one; the role marker makes this
module machine-scope despite living under ``tests/``.  The last two
functions launder the identity through an alias and an arithmetic
derivation — shapes the old name-heuristic ANON001 could not follow
and the taint pass must.
"""
# anonlint: role=machine


def branch_on_identity(pid, view):
    if pid:
        return view
    return None


def compare_identities(pid, other):
    return pid == other


def write_by_identity(pid, my_input, Write):
    yield Write(pid, my_input)


def index_by_identity(pid, table):
    return table[pid]


def alias_branch_on_identity(pid, view):
    who = pid
    if who:
        return view
    return None


def derived_subscript(pid, table):
    slot = pid + 1
    return table[slot]
