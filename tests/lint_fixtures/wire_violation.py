"""Seeded WIRE001/WIRE002 violations (anonlint fixture; never imported)."""
# anonlint: role=machine


def direct_register_subscript(memory, index):
    return memory[index]


def direct_register_store(registers, index, value):
    registers[index] = value


def direct_memory_api(memory, index):
    return memory.read(0, index)
