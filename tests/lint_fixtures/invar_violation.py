"""Seeded INVAR001/INVAR002v2 violations (anonlint fixture; never imported).

No role marker: the equivariance scan must reach these through the
``@permutation_invariant`` decoration alone.  ``aliased_repr_selection``
routes the repr-ordered list through an intermediate name — invisible
to the old syntactic INVAR002, tracked by the taint pass.
"""


def permutation_invariant(fn):
    fn.permutation_invariant = True
    return fn


def unmarked_property(spec, state):
    return None


@permutation_invariant
def repr_tie_break(spec, state):
    leaders = sorted(state.candidates, key=repr)
    return leaders[0]


@permutation_invariant
def direct_repr_selection(spec, state):
    return sorted(state.candidates, key=repr)[0]


@permutation_invariant
def orders_identities(spec, state, pid, other):
    if pid < other:
        return "identity order observed"
    return None


@permutation_invariant
def positional_asymmetry(spec, state):
    for index, local in enumerate(state.locals):
        if index < 1 and local is None:
            return "first position is special"
    return None


@permutation_invariant
def aliased_repr_selection(spec, state):
    ordered = sorted(state.candidates, key=repr)
    chosen = ordered
    return chosen[0]


@permutation_invariant
def message_only_sort(spec, state):
    return f"diagnostic: {sorted(state.candidates, key=repr)!r}"


FIXTURE_SAFETY = (
    unmarked_property,
    repr_tie_break,
)
