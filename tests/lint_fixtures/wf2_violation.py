"""Seeded WF002 violations (anonlint fixture; parsed, never imported).

Three loops whose wait-freedom argument fails for a different reason
each (no derivable variant, variant moving the wrong way, bound not in
any declared budget), alongside three loops the rule must accept
(constant bound, ``len(...)`` bound, and a bound named in the module's
``WAIT_FREE_BOUNDS`` declaration).
"""
# anonlint: role=machine

WAIT_FREE_BOUNDS = ("level_target",)


def constant_bound_loop(collect):
    round_no = 0
    while round_no < 3:
        collect()
        round_no += 1
    return round_no


def len_bound_loop(entries):
    index = 0
    while index < len(entries):
        index += 1
    return index


def declared_budget_loop(collect, level_target):
    level = 0
    while level < level_target:
        collect()
        level += 1
    return level


def no_variant_loop(flag_fn):
    while flag_fn():
        pass


def wrong_direction(cap):
    count = cap
    while count < cap:
        count -= 1
    return count


def undeclared_bound(collect, retries):
    attempt = 0
    while attempt < retries:
        collect()
        attempt += 1
    return attempt
