"""Seeded POR002 machine-footprint violations (anonlint fixture).

Parsed, never imported: ``Write``/``Read`` here are just the names the
static abstract interpretation of ``enabled_ops`` recognizes.

- ``LyingMachine`` declares the empty footprint while emitting both op
  kinds — the too-narrow declaration POR002 must catch (and, were it a
  real machine, the dynamic cross-check would also catch on the first
  reachable state).
- ``UndeclaredMachine`` exposes its own ops with no declaration at all.
- ``HonestMachine`` and ``DelegatingMachine`` are the accepted shapes.
"""
# anonlint: role=machine


class LyingMachine:
    por_footprint = {"writes": "none", "reads": "none"}

    def enabled_ops(self, state):
        if state.phase == "write":
            return tuple(Write(reg, state.view) for reg in state.unwritten)
        return (Read(state.scan_pos),)


class UndeclaredMachine:
    def enabled_ops(self, state):
        return (Read(state.scan_pos),)


class HonestMachine:
    por_footprint = {"writes": "unwritten", "reads": "all"}

    def enabled_ops(self, state):
        if state.phase == "write":
            return tuple(Write(reg, state.view) for reg in state.unwritten)
        return (Read(state.scan_pos),)


class DelegatingMachine:
    por_footprint = "delegate"

    def enabled_ops(self, state):
        return self._inner.enabled_ops(state.inner)
