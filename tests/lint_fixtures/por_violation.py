"""Seeded POR001 violations (anonlint fixture; never imported).

No role marker needed: the footprint scan reaches these through the
``@visibility_footprint`` decoration alone.
"""


def visibility_footprint(*, outputs=False, registers=(), locals=False):
    def mark(fn):
        fn.visibility_footprint = (outputs, registers, locals)
        return fn

    return mark


@visibility_footprint(outputs=True)
def reads_registers_undeclared(spec, state):
    if any(value == "BAD" for value in state.registers):
        return "saw BAD"
    return None


@visibility_footprint(registers=(0,))
def reads_register_outside_footprint(spec, state):
    if state.registers[1] == "BAD":
        return "register 1 outside the declared (0,) footprint"
    return None


@visibility_footprint(outputs=True)
def reads_locals_undeclared(spec, state):
    if any(local.phase == "deciding" for local in state.locals):
        return "verdict depends on undeclared local state"
    return None


@visibility_footprint(registers=(0, 2))
def constant_subscripts_in_footprint(spec, state):
    # Clean: every register read is a constant index inside the
    # declared footprint.
    if state.registers[0] == state.registers[2]:
        return None
    return None


@visibility_footprint(registers="all")
def all_registers_declared(spec, state):
    # Clean: "all" covers any register read, constant or not.
    return "mismatch" if len(set(state.registers)) > 1 else None


@visibility_footprint(outputs=True, locals=True)
def locals_declared(spec, state):
    # Clean: locals=True is the conservative maximum (full expansion).
    return None if all(l.phase for l in state.locals) else "idle"


@visibility_footprint(registers=(0,))
def suppressed_narrow_footprint(spec, state):  # anonlint: disable=POR002
    return "BAD" if state.registers[1] else None  # anonlint: disable=POR001
