"""Seeded WF001 violations (anonlint fixture; never imported)."""
# anonlint: role=machine


def no_exit_loop(step):
    while True:
        step()


def unguarded_double_collect(collect):
    previous = collect()
    while True:
        current = collect()
        if current == previous:
            return current
        previous = current


def level_guarded_loop(collect, level_target):
    while True:
        level = collect()
        if level >= level_target:
            return level
