"""Symmetry hooks for RenamingMachine: equivariance and conformance.

The renaming machine became symmetry-capable by gaining
``rename_inputs`` / ``rename_register_value`` hooks; the name is a
pure function of (snapshot, my_id), so the hooks *recompute* it from
the renamed snapshot rather than trying to map the integer.  These
tests pin the contract three ways: the hooks form a group action
(involutions invert), canonical forms are orbit invariants, and
exhaustive reduced exploration covers exactly the unreduced space with
the same verdict — for every wiring assignment and for the equal-group
configuration.
"""

import random

import pytest

from repro.checker import Explorer, SystemSpec
from repro.checker.properties import renaming_names_valid
from repro.checker.symmetry import StateCanonicalizer
from repro.core.renaming import RenamingMachine, bar_noy_dolev_name
from repro.memory.wiring import WiringAssignment, enumerate_wiring_assignments

ALL_WIRINGS = list(enumerate_wiring_assignments(2, 2))


def _spec(groups=(1, 2), wiring=None):
    return SystemSpec(
        RenamingMachine(2),
        list(groups),
        wiring or WiringAssignment.identity(2, 2),
    )


def _random_reachable(spec, rng, steps=25):
    state = spec.initial_state()
    for _ in range(steps):
        successors = list(spec.successors(state))
        if not successors:
            break
        _, state = rng.choice(successors)
    return state


class TestRenameHooks:
    def test_involution_round_trips_local_states(self):
        spec = _spec()
        machine = spec.machine
        mapping = {1: 2, 2: 1}
        rng = random.Random(7)
        for _ in range(20):
            state = _random_reachable(spec, rng, steps=40)
            for local in state.locals:
                image = machine.rename_inputs(local, mapping)
                assert machine.rename_inputs(image, mapping) == local

    def test_renamed_done_state_recomputes_the_name(self):
        spec = _spec()
        machine = spec.machine
        mapping = {1: 2, 2: 1}
        rng = random.Random(11)
        seen_done = 0
        for _ in range(60):
            state = _random_reachable(spec, rng, steps=60)
            for local in state.locals:
                if local.name is None:
                    continue
                seen_done += 1
                image = machine.rename_inputs(local, mapping)
                snapshot = machine.snapshot_machine.output(image.inner)
                assert image.my_id == mapping[local.my_id]
                assert image.name == bar_noy_dolev_name(snapshot, image.my_id)
        assert seen_done > 0  # the walk must actually reach named states

    def test_stabilizer_is_nontrivial_for_both_group_patterns(self):
        # Distinct groups need the input-renaming element; equal groups
        # admit the pure processor swap. Both must be order 2.
        assert StateCanonicalizer(_spec((1, 2))).order == 2
        assert StateCanonicalizer(_spec((1, 1))).order == 2


class TestCanonicalForms:
    def test_canonical_form_is_an_orbit_invariant(self):
        spec = _spec()
        canonicalizer = StateCanonicalizer(spec)
        rng = random.Random(3)
        for _ in range(15):
            state = _random_reachable(spec, rng, steps=35)
            rep, _witness = canonicalizer.canonical(state)
            for element in canonicalizer.elements:
                image = canonicalizer.apply(element, state)
                assert canonicalizer.canonical(image)[0] == rep

    def test_transitions_commute_with_the_action(self):
        spec = _spec()
        canonicalizer = StateCanonicalizer(spec)
        rng = random.Random(5)
        for _ in range(10):
            state = _random_reachable(spec, rng, steps=30)
            for element in canonicalizer.elements:
                image = canonicalizer.apply(element, state)
                expected = {
                    canonicalizer.apply(element, successor)
                    for _action, successor in spec.successors(state)
                }
                actual = {
                    successor for _action, successor in spec.successors(image)
                }
                assert actual == expected


class TestExhaustiveConformance:
    @pytest.mark.parametrize(
        "wiring", ALL_WIRINGS, ids=[str(w.permutations()) for w in ALL_WIRINGS]
    )
    def test_reduced_covers_unreduced_space(self, wiring):
        spec = _spec(wiring=wiring)
        base = Explorer(spec, [renaming_names_valid]).run()
        reduced = Explorer(spec, [renaming_names_valid], symmetry=True).run()
        assert base.ok and base.complete
        assert reduced.ok and reduced.complete
        assert reduced.symmetry_group_order == 2
        assert reduced.states < base.states
        assert reduced.covered_states == base.states

    def test_equal_groups_conform_too(self):
        spec = _spec(groups=(1, 1))
        base = Explorer(spec, [renaming_names_valid]).run()
        reduced = Explorer(spec, [renaming_names_valid], symmetry=True).run()
        assert base.ok and reduced.ok and reduced.complete
        assert reduced.covered_states == base.states
