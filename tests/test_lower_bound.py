"""Experiment E6 tests: the Section 2.1 lower bound made executable.

With ``N-1`` registers, the covering adversary erases every trace of the
solo processor ``p`` and leaves the system indistinguishable from twin
executions with different inputs for ``p`` — so no non-trivial read-write
coordination is possible below ``N`` registers.  A corollary exercised
here (and in benchmark E9): the snapshot algorithm's guarantees genuinely
fail in that regime.
"""

import pytest

from repro.core import SnapshotMachine, WriteScanMachine
from repro.sim.adversaries import (
    CoveringOutcome,
    covering_wiring,
    demonstrate_erasure,
    run_covering_execution,
)


class TestCoveringWiring:
    def test_q_members_cover_distinct_registers(self):
        wiring = covering_wiring(4, 3)
        first_targets = {wiring[q].to_physical(0) for q in range(1, 4)}
        assert first_targets == {0, 1, 2}

    def test_p_gets_identity(self):
        wiring = covering_wiring(4, 3)
        assert [wiring[0].to_physical(i) for i in range(3)] == [0, 1, 2]


class TestCoveringExecution:
    @pytest.fixture(scope="class")
    def outcome(self) -> CoveringOutcome:
        return run_covering_execution(
            SnapshotMachine(4, n_registers=3), inputs=[1, 2, 3, 4]
        )

    def test_solo_processor_terminates(self, outcome):
        """p runs solo and (wrongly, see below) outputs just itself."""
        assert outcome.solo_output == frozenset({1})

    def test_memory_after_solo_contains_p_information(self, outcome):
        assert any(
            1 in record.view for record in outcome.memory_after_solo
        )

    def test_covering_erases_p_completely(self, outcome):
        assert all(
            1 not in record.view for record in outcome.memory_after_covering
        )

    def test_all_registers_covered(self, outcome):
        assert outcome.covered_registers == (0, 1, 2)

    def test_construction_needs_two_processors(self):
        with pytest.raises(ValueError):
            run_covering_execution(SnapshotMachine(1), inputs=[1])


class TestIndistinguishability:
    @pytest.fixture(scope="class")
    def demo(self):
        return demonstrate_erasure(
            lambda: SnapshotMachine(4, n_registers=3),
            inputs=[1, 2, 3, 4],
            alternate_input=99,
        )

    def test_twin_runs_decide_differently(self, demo):
        assert demo.first.solo_output == frozenset({1})
        assert demo.second.solo_output == frozenset({99})

    def test_memory_indistinguishable_after_covering(self, demo):
        assert demo.memory_indistinguishable
        assert demo.first.memory_after_covering == demo.second.memory_after_covering

    def test_q_observations_identical(self, demo):
        assert demo.q_indistinguishable

    def test_erasure_complete(self, demo):
        assert demo.erasure_complete


class TestTaskViolationBelowN:
    def test_snapshot_task_violated_with_n_minus_1_registers(self):
        """Continue the covering execution: members of Q now run to
        completion having never seen p's input, so their outputs cannot
        contain 1 while p output {1} — containment is violated, matching
        the impossibility."""
        from repro.memory import AnonymousMemory
        from repro.sim import MachineProcess, RoundRobinScheduler, Runner
        from repro.sim.machine import FIRST_ENABLED

        machine = SnapshotMachine(4, n_registers=3)
        wiring = covering_wiring(4, 3)
        memory = AnonymousMemory(wiring, machine.register_initial_value())
        processes = [
            MachineProcess(pid, machine, pid + 1, FIRST_ENABLED)
            for pid in range(4)
        ]
        runner = Runner(memory, processes, RoundRobinScheduler())
        # Phase 1+2: p solo to completion (others still poised on their
        # first writes, which cover all three registers).
        while processes[0].status.value == "running":
            runner.step_process(0)
        # Phase 3: the three poised writes land back-to-back, erasing p.
        for pid in (1, 2, 3):
            runner.step_process(pid)
        assert all(1 not in record.view for record in runner.memory.snapshot())
        # Then Q runs fairly to completion.
        for _ in range(200_000):
            enabled = [p.pid for p in processes[1:] if p.status.value == "running"]
            if not enabled:
                break
            for pid in enabled:
                runner.step_process(pid)
        outputs = {p.pid: p.output for p in processes if p.output is not None}
        assert outputs[0] == frozenset({1})
        assert all(1 not in outputs[q] for q in (1, 2, 3) if q in outputs)
        # Explicit containment violation:
        violated = any(
            not (outputs[0] <= outputs[q] or outputs[q] <= outputs[0])
            for q in (1, 2, 3)
            if q in outputs
        )
        assert violated

    def test_erasure_also_hits_write_scan_loop(self):
        """The construction is algorithm-agnostic: the plain write-scan
        loop suffers the same erasure (run with a step budget since it
        never terminates)."""
        outcome = run_covering_execution(
            WriteScanMachine(3), inputs=[1, 2, 3, 4], n_registers=3,
            solo_budget=500,
        )
        assert all(1 not in value for value in outcome.memory_after_covering)


class TestNRegistersRegimeIsSafe:
    def test_with_n_registers_covering_cannot_erase(self):
        """With N registers the N-1 poised writes cannot cover all of
        memory: p's information survives somewhere."""
        outcome = run_covering_execution(
            SnapshotMachine(4, n_registers=4),
            inputs=[1, 2, 3, 4],
            n_registers=4,
        )
        assert any(
            1 in record.view for record in outcome.memory_after_covering
        )
