"""Claim-B tests: the snapshot task vs atomic memory snapshots (§8).

The paper reports that TLC found, for 3 processors, executions whose
output never matched the memory contents.  Our reproduction, under the
union-of-register-views formalization, finds the opposite for the
whole-execution reading — and the investigation machinery itself is
under test here:

- for N=2 the exhaustive history-augmented search proves every output
  always matched some earlier memory union;
- for N=3 the sound abstraction of :mod:`repro.checker.claim_b`
  exhausts the entire candidate region with no counterexample
  (the benchmark E5 sweeps all wirings; the test covers representative
  ones);
- the *linearizability* form of the claim is true: the constructive
  execution of :mod:`repro.sim.non_linearizable` outputs ``{1,2}``
  while the memory union is ``{1,2,3}`` at every instant of the final
  scan, and the tests re-verify it against the recorded trace.
"""

import random

import pytest

from repro.checker import SystemSpec
from repro.checker.atomicity import (
    dfs_non_atomic_search,
    extend_avoiding_union,
    find_non_atomic_execution,
    memory_union,
    random_walk_non_atomic_search,
)
from repro.checker.claim_b import exhaustive_claim_b_search
from repro.core import SnapshotMachine
from repro.core.views import RegisterRecord
from repro.memory.wiring import WiringAssignment, enumerate_wiring_assignments
from repro.sim.non_linearizable import build_non_linearizable_scan_demo


class TestMemoryUnion:
    def test_empty_memory(self):
        spec = SystemSpec(
            SnapshotMachine(2), [1, 2], WiringAssignment.identity(2, 2)
        )
        assert memory_union(spec.initial_state()) == frozenset()

    def test_union_of_record_views(self):
        from repro.checker.system import GlobalState

        state = GlobalState(
            registers=(
                RegisterRecord(frozenset({1}), 0),
                RegisterRecord(frozenset({2, 3}), 1),
            ),
            locals=(),
        )
        assert memory_union(state) == frozenset({1, 2, 3})


class TestExhaustiveSearchN2:
    """For two processors the question is settled exhaustively per
    wiring: every output matched a previous union."""

    @pytest.mark.parametrize(
        "wiring", list(enumerate_wiring_assignments(2, 2)),
        ids=lambda w: str(w.permutations()),
    )
    def test_no_counterexample_for_two_processors(self, wiring):
        spec = SystemSpec(SnapshotMachine(2), [1, 2], wiring)
        counterexample, states, complete = find_non_atomic_execution(spec)
        assert complete
        assert counterexample is None
        assert states > 0


class TestSearchToolsN3:
    """The bounded searches are falsification attempts; on this system
    they must come back empty (consistent with the exhaustive
    abstraction result), and they must do so without crashing."""

    def test_bfs_budgeted_finds_nothing(self):
        wiring = WiringAssignment.identity(3, 3)
        spec = SystemSpec(SnapshotMachine(3), [1, 2, 3], wiring)
        counterexample, states, complete = find_non_atomic_execution(
            spec, max_states=50_000
        )
        assert counterexample is None
        assert not complete  # the budget is hit, honestly reported

    def test_dfs_budgeted_finds_nothing(self):
        wiring = WiringAssignment.identity(3, 3)
        spec = SystemSpec(SnapshotMachine(3), [1, 2, 3], wiring)
        counterexample, visited = dfs_non_atomic_search(
            spec, max_visited=50_000, rng=random.Random(1)
        )
        assert counterexample is None
        assert visited >= 50_000

    def test_random_walks_find_nothing(self):
        rng = random.Random(0)
        wiring = WiringAssignment.random(3, 3, rng)
        spec = SystemSpec(SnapshotMachine(3), [1, 2, 3], wiring)
        assert random_walk_non_atomic_search(
            spec, rng, walks=50, max_steps=400
        ) is None


class TestClaimBAbstraction:
    def test_identity_wiring_region_exhausted(self):
        """The abstracted candidate region is finite and contains no
        witness termination — for this wiring, no execution outputs
        {1,2} while the union avoids {1,2} throughout."""
        result = exhaustive_claim_b_search(
            ((0, 1, 2), (0, 1, 2), (0, 1, 2))
        )
        assert result.exhausted
        assert not result.found
        assert result.states > 1_000_000  # the region is genuinely large

    def test_footnote4_variant_also_clear(self):
        """The level-(N-1) termination variant has the same outcome."""
        result = exhaustive_claim_b_search(
            ((0, 1, 2), (0, 1, 2), (0, 1, 2)), level_target=2
        )
        assert result.exhausted
        assert not result.found

    def test_budget_reported_honestly(self):
        result = exhaustive_claim_b_search(
            ((0, 1, 2), (0, 1, 2), (0, 1, 2)), max_visited=1_000
        )
        assert not result.exhausted
        assert not result.found


class TestNonLinearizableScan:
    @pytest.fixture(scope="class")
    def demo(self):
        return build_non_linearizable_scan_demo()

    def test_witness_outputs_w(self, demo):
        assert demo.output == frozenset({1, 2})

    def test_union_never_matches_during_final_scan(self, demo):
        assert demo.never_matches
        assert all(
            union == frozenset({1, 2, 3})
            for union in demo.unions_during_final_scan
        )

    def test_trace_reverification(self, demo):
        """Independent check against the recorded trace: reconstruct the
        memory at every event of B's final scan and recompute unions."""
        trace = demo.runner.memory.trace
        history = trace.memory_history(
            3, initial_value=RegisterRecord()
        )
        # Find B's final-scan reads: the last three reads by pid 1.
        read_times = [
            event.time
            for event in trace.reads()
            if event.pid == 1
        ][-3:]
        start, end = read_times[0], read_times[-1]
        for t in range(start, end + 2):
            union = frozenset()
            for record in history[t]:
                union |= record.view
            assert union != demo.output, f"union matched at time {t}"

    def test_all_processors_validity_unaffected(self, demo):
        """The construction does not break the snapshot task itself: if
        the remaining processors run to completion, outputs stay
        containment-related."""
        from repro.core.views import all_comparable

        runner = demo.runner
        for _ in range(100_000):
            enabled = runner.enabled_pids()
            if not enabled:
                break
            runner.step_process(enabled[0])
        result = runner.result()
        assert result.all_terminated
        assert all_comparable(result.outputs.values())


class TestAdditionalSearchStrategies:
    """The documented search arsenal: pattern-scheduled walks and
    best-first with level-progress priority.  On this system all must
    come back empty (the exhaustive abstraction settles the question);
    these tests pin their mechanics and honesty."""

    def test_pattern_walks_find_nothing(self):
        import random as random_module

        rng = random_module.Random(5)
        wiring = WiringAssignment.identity(3, 3)
        spec = SystemSpec(SnapshotMachine(3), [1, 2, 3], wiring)
        from repro.checker.atomicity import pattern_walk_non_atomic_search

        assert pattern_walk_non_atomic_search(
            spec, rng, walks=30, max_steps=600
        ) is None

    def test_pattern_walks_reach_terminations(self):
        """Sanity: the pattern walks do reach termination events (the
        searches would be vacuous otherwise)."""
        wiring = WiringAssignment.identity(2, 2)
        spec = SystemSpec(SnapshotMachine(2), [1, 2], wiring)
        # Drive one pattern walk manually and count terminations.
        state = spec.initial_state()
        pattern = [0, 1]
        cursor = 0
        terminated = set()
        for _ in range(400):
            pid = pattern[cursor % 2]
            cursor += 1
            ops = spec.machine.enabled_ops(state.locals[pid])
            if not ops:
                continue
            _, state = spec.apply(state, pid, ops[0])
            if spec.terminated(state, pid):
                terminated.add(pid)
        assert terminated == {0, 1}

    def test_best_first_finds_nothing_and_reports_budget(self):
        from repro.checker.atomicity import best_first_non_atomic_search

        wiring = WiringAssignment.identity(3, 3)
        spec = SystemSpec(SnapshotMachine(3), [1, 2, 3], wiring)
        counterexample, visited = best_first_non_atomic_search(
            spec, max_visited=30_000
        )
        assert counterexample is None
        assert visited >= 30_000

    def test_best_first_exhausts_n2(self):
        from repro.checker.atomicity import best_first_non_atomic_search

        wiring = WiringAssignment.identity(2, 2)
        spec = SystemSpec(SnapshotMachine(2), [1, 2], wiring)
        counterexample, visited = best_first_non_atomic_search(
            spec, max_visited=1_000_000
        )
        assert counterexample is None
        assert visited < 1_000_000  # drained the whole augmented space


class TestExtendAvoidingUnion:
    def test_extension_of_synthetic_prefix(self):
        """`extend_avoiding_union` completes a prefix to quiescence while
        dodging a forbidden union (exercised on a harmless target)."""
        from repro.checker.atomicity import AtomicityCounterexample

        wiring = WiringAssignment.identity(2, 2)
        spec = SystemSpec(SnapshotMachine(2), [1, 2], wiring)
        fake = AtomicityCounterexample(
            pid=0,
            output=frozenset({9}),  # never a real union: trivially avoided
            actions=[],
            unions_seen=frozenset(),
        )
        actions = extend_avoiding_union(spec, fake)
        assert actions is not None
        state = spec.initial_state()
        for action in actions:
            _, state = spec.apply(state, action.pid, action.op)
        assert spec.all_terminated(state)
