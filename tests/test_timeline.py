"""Tests for the ASCII timeline renderers."""

from repro.analysis import erasure_summary, render_lanes, render_register_history
from repro.api import run_snapshot
from repro.memory.trace import Trace
from repro.sim.scripted import build_figure2_runner


def figure2_trace(cycles=2):
    runner = build_figure2_runner(n_cycles=cycles)
    return runner.run(10 ** 6).trace


class TestRenderLanes:
    def test_one_row_per_processor(self):
        trace = figure2_trace()
        text = render_lanes(trace, max_events=20)
        lines = text.splitlines()
        lanes = [line for line in lines if "|" in line]
        assert len(lanes) == 3
        assert lanes[0].startswith("p0")

    def test_cells_align_across_lanes(self):
        text = render_lanes(figure2_trace(), max_events=20)
        lanes = [line for line in text.splitlines() if "|" in line]
        assert len({len(lane) for lane in lanes}) == 1

    def test_truncation_reported(self):
        trace = figure2_trace(cycles=3)
        text = render_lanes(trace, max_events=10)
        assert "more events" in text

    def test_write_and_read_markers(self):
        text = render_lanes(figure2_trace(), max_events=8)
        assert "W1" in text and "R1" in text

    def test_output_marker(self):
        result = run_snapshot([1, 2], seed=0)
        text = render_lanes(result.trace, max_events=1000)
        assert " ! " in text

    def test_custom_names(self):
        text = render_lanes(
            figure2_trace(), max_events=8,
            processor_names=["alpha", "beta", "gamma"],
        )
        assert "alpha" in text

    def test_empty_trace(self):
        assert render_lanes(Trace()) == ""


class TestRegisterHistory:
    def test_one_row_per_register(self):
        text = render_register_history(figure2_trace(), 3)
        lines = text.splitlines()
        assert len(lines) == 3
        assert lines[0].startswith("r0:")

    def test_figure2_erasures_marked(self):
        """Figure 2 is erasure churn: the {1,2}/{1,3} values written by
        p2 and p3 are overwritten before anyone else reads them."""
        text = render_register_history(figure2_trace(), 3)
        assert "✗" in text
        assert "{1,2}@p1✗" in text
        assert "{1,3}@p2✗" in text

    def test_last_value_never_marked_erased(self):
        text = render_register_history(figure2_trace(), 3)
        for line in text.splitlines():
            assert not line.rstrip().endswith("✗")

    def test_truncation_suffix(self):
        text = render_register_history(
            figure2_trace(cycles=4), 3, max_entries_per_register=3
        )
        assert "(+" in text

    def test_record_values_rendered_with_level(self):
        result = run_snapshot([1, 2], seed=0)
        text = render_register_history(result.trace, 2)
        assert "|" in text  # the {view}|level form


class TestErasureSummary:
    def test_figure2_counts(self):
        trace = figure2_trace(cycles=2)
        counts = erasure_summary(trace, 3)
        assert sum(counts.values()) > 0
        assert set(counts) == {0, 1, 2}

    def test_matches_statistics_module(self):
        from repro.analysis import collect_statistics

        trace = figure2_trace(cycles=3)
        assert sum(erasure_summary(trace, 3).values()) == (
            collect_statistics(trace).unread_overwrites
        )

    def test_empty_trace(self):
        assert erasure_summary(Trace(), 2) == {0: 0, 1: 0}
