"""Unit tests for the snapshot machine's transitions (Figure 3)."""

import pytest

from repro.core.snapshot import (
    PHASE_DONE,
    PHASE_SCAN,
    PHASE_WRITE,
    SnapshotMachine,
)
from repro.core.views import RegisterRecord
from repro.sim.ops import Read, Write


@pytest.fixture
def machine():
    return SnapshotMachine(3)


def record(view, level=0):
    return RegisterRecord(view=frozenset(view), level=level)


def complete_scan(machine, state, records):
    """Feed one full scan of ``records`` (one per register)."""
    for reg, rec in enumerate(records):
        state = machine.apply(state, Read(reg), rec)
    return state


def do_write(machine, state):
    op = machine.enabled_ops(state)[0]
    return machine.apply(state, op, None)


class TestConstruction:
    def test_defaults(self):
        machine = SnapshotMachine(4)
        assert machine.n_registers == 4
        assert machine.level_target == 4

    def test_register_ablation_configurable(self):
        machine = SnapshotMachine(4, n_registers=6)
        assert machine.n_registers == 6
        assert machine.level_target == 4

    def test_footnote4_level_target(self):
        machine = SnapshotMachine(4, level_target=3)
        assert machine.level_target == 3

    def test_invalid_configs_rejected(self):
        with pytest.raises(ValueError):
            SnapshotMachine(0)
        with pytest.raises(ValueError):
            SnapshotMachine(2, n_registers=0)
        with pytest.raises(ValueError):
            SnapshotMachine(2, level_target=0)

    def test_initial_register_record(self, machine):
        assert machine.register_initial_value() == RegisterRecord(frozenset(), 0)


class TestWritePhase:
    def test_initial_state(self, machine):
        state = machine.initial_state(7)
        assert state.view == frozenset({7})
        assert state.level == 0
        assert state.phase == PHASE_WRITE
        assert state.unwritten == frozenset({0, 1, 2})

    def test_writes_carry_view_and_level(self, machine):
        state = machine.initial_state(7)
        for op in machine.enabled_ops(state):
            assert op.value == RegisterRecord(frozenset({7}), 0)

    def test_nondeterministic_register_choice(self, machine):
        state = machine.initial_state(7)
        assert {op.reg for op in machine.enabled_ops(state)} == {0, 1, 2}

    def test_write_enters_scan_and_resets_bookkeeping(self, machine):
        state = machine.initial_state(7)
        state = machine.apply(state, Write(1, machine.enabled_ops(state)[1].value), None)
        assert state.phase == PHASE_SCAN
        assert state.scan_pos == 0
        assert state.scan_all_match is True
        assert state.scan_min_level is None
        assert state.unwritten == frozenset({0, 2})


class TestScanLevelRules:
    def test_matching_scan_increments_level(self, machine):
        state = do_write(machine, machine.initial_state(7))
        own = frozenset({7})
        state = complete_scan(
            machine, state, [record(own, 0), record(own, 2), record(own, 1)]
        )
        # min level read = 0, so new level = 1
        assert state.level == 1
        assert state.view == own
        assert state.phase == PHASE_WRITE

    def test_min_level_plus_one(self, machine):
        state = do_write(machine, machine.initial_state(7))
        own = frozenset({7})
        state = complete_scan(
            machine, state, [record(own, 2), record(own, 2), record(own, 1)]
        )
        assert state.level == 2

    def test_mismatching_scan_resets_level_to_zero(self, machine):
        state = machine.initial_state(7)
        # Climb to level 1 first.
        state = do_write(machine, state)
        own = frozenset({7})
        state = complete_scan(
            machine, state, [record(own, 0)] * 3
        )
        assert state.level == 1
        # Now a scan that sees a different view.
        state = do_write(machine, state)
        state = complete_scan(
            machine, state, [record(own, 1), record({7, 9}, 1), record(own, 1)]
        )
        assert state.level == 0

    def test_mismatching_scan_grows_view(self, machine):
        state = do_write(machine, machine.initial_state(7))
        state = complete_scan(
            machine,
            state,
            [record({7}, 0), record({8}, 0), record({7, 9}, 0)],
        )
        assert state.view == frozenset({7, 8, 9})

    def test_empty_initial_registers_do_not_match(self, machine):
        """Reading the initial (empty) record differs from the view, so
        the first scan of a fresh system resets to level 0."""
        state = do_write(machine, machine.initial_state(7))
        empty = machine.register_initial_value()
        state = complete_scan(machine, state, [empty] * 3)
        assert state.level == 0
        assert state.view == frozenset({7})

    def test_non_record_read_rejected(self, machine):
        state = do_write(machine, machine.initial_state(7))
        with pytest.raises(TypeError):
            machine.apply(state, Read(0), frozenset({7}))


class TestTermination:
    def climb_to_done(self, machine, my_input=7):
        state = machine.initial_state(my_input)
        own = frozenset({my_input})
        while state.phase != PHASE_DONE:
            state = do_write(machine, state)
            level = state.level
            state = complete_scan(
                machine, state, [record(own, level)] * machine.n_registers
            )
        return state

    def test_reaches_level_target_and_outputs(self, machine):
        state = self.climb_to_done(machine)
        assert state.level == machine.level_target
        assert machine.output(state) == frozenset({7})

    def test_no_ops_after_done(self, machine):
        state = self.climb_to_done(machine)
        assert machine.enabled_ops(state) == ()

    def test_done_state_is_canonical(self, machine):
        """Terminated states canonicalize dead fields (checker quotient)."""
        state = self.climb_to_done(machine)
        assert state.unwritten == frozenset()
        assert state.scan_pos == 0
        assert state.scan_min_level is None

    def test_climb_takes_exactly_target_scans_solo(self, machine):
        """A solo climber needs level_target matching scans."""
        state = machine.initial_state(7)
        own = frozenset({7})
        scans = 0
        while state.phase != PHASE_DONE:
            state = do_write(machine, state)
            state = complete_scan(
                machine, state, [record(own, state.level)] * 3
            )
            scans += 1
        assert scans == machine.level_target

    def test_level_never_exceeds_target(self, machine):
        state = self.climb_to_done(machine)
        assert state.level <= machine.level_target

    def test_output_none_while_running(self, machine):
        state = machine.initial_state(7)
        assert machine.output(state) is None
        state = do_write(machine, state)
        assert machine.output(state) is None
