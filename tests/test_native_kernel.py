"""The generated-C kernel vs its numpy twin, bit for bit.

The native kernel's contract is stronger than "same verdict": every
overridden method — fingerprinting, canonicalization, expansion, the
in-level dedup, the C0/C1 selector phase — must be *bit-identical* to
the numpy implementation on arbitrary inputs, because the exploration
loop treats kernels as interchangeable mid-run (a sharded job may
resume under a different kernel).  The property tests below therefore
compare raw arrays, not exploration summaries; the exhaustive N=2
matrix then checks the composed engine end to end (``asdict``-equal
for non-POR runs, verdict-conformant under POR, mirroring the
batch-vs-scalar contract in ``test_batch_engine.py``).

The native kernel is a *soft* capability: no compiler (or
``REPRO_NATIVE_DISABLE=1``) must degrade to the numpy kernel with a
single CLI warning and exit code 0, never a traceback.  Those
degradation tests run everywhere; the conformance tests skip cleanly
when the host cannot build kernels.
"""

from dataclasses import asdict

import pytest

import repro.checker.batch as batch_mod
from repro.checker.batch import explore_batch, make_kernel
from repro.checker.fast_snapshot import FastSnapshotSpec
from repro.store import StoreConfig

requires_numpy = pytest.mark.skipif(
    not batch_mod.HAVE_NUMPY, reason="numpy not installed"
)

if batch_mod.HAVE_NUMPY:
    import numpy as np

try:
    from repro.checker.native.loader import native_available

    _native_ok = native_available()
except Exception:  # pragma: no cover - import error == unavailable
    _native_ok = False

requires_native = pytest.mark.skipif(
    not _native_ok, reason="native kernel unavailable (no numpy/compiler)"
)

N2_CLASSES = [((0, 1), (0, 1)), ((0, 1), (1, 0))]
N3_IDENTITY = ((0, 1, 2), (0, 1, 2), (0, 1, 2))


def _kernels(spec, symmetry=False):
    """(numpy kernel, native kernel) with matching canonicalizers."""
    canon = None
    if symmetry:
        from repro.checker.symmetry import FastCanonicalizer

        canon = FastCanonicalizer(spec)
    return (
        make_kernel(spec, "numpy", canon),
        make_kernel(spec, "native", canon),
        canon,
    )


def _edge_states(spec, rng, count=10_000):
    """Random u64s in the packed range plus the adversarial edges.

    Includes 0, the all-ones word truncated to the state width, and
    "same packing for every processor" words (each pid's local field
    holds the same value) — the inputs most likely to expose masking or
    shift mistakes in generated code.
    """
    mask = (1 << spec.state_bits) - 1
    states = rng.integers(0, 2**64 - 1, size=count, dtype=np.uint64,
                          endpoint=True) & np.uint64(mask)
    same_pid = []
    for value in (0, 1, (1 << spec.local_bits) - 1):
        word = 0
        for pid in range(spec.n):
            word |= value << spec.local_offsets[pid]
        same_pid.append(word & mask)
    edges = np.array([0, mask, *same_pid], dtype=np.uint64)
    return np.concatenate([edges, states])


@requires_numpy
@requires_native
class TestMethodBitIdentity:
    """Each overridden method, raw arrays in, raw arrays out."""

    def test_fingerprint_bit_identical_on_random_and_edge_words(self):
        spec = FastSnapshotSpec([1, 2, 3], N3_IDENTITY)
        numpy_kernel, native_kernel, _ = _kernels(spec)
        rng = np.random.default_rng(11)
        # fingerprints are defined on the full u64 domain, not just
        # packed states — exercise all 64 bits
        words = np.concatenate([
            np.array([0, 2**64 - 1], dtype=np.uint64),
            rng.integers(0, 2**64 - 1, size=10_000, dtype=np.uint64,
                         endpoint=True),
        ])
        assert np.array_equal(
            numpy_kernel.fingerprint_many(words),
            native_kernel.fingerprint_many(words),
        )

    def test_canonical_and_orbit_sizes_bit_identical(self):
        spec = FastSnapshotSpec([1, 2, 3], N3_IDENTITY)
        numpy_kernel, native_kernel, canon = _kernels(spec, symmetry=True)
        assert canon is not None and not canon.trivial
        numpy_canon = numpy_kernel.make_canonicalizer(canon)
        native_canon = native_kernel.make_canonicalizer(canon)
        rng = np.random.default_rng(13)
        states = _edge_states(spec, rng)
        assert np.array_equal(
            numpy_canon.canonical_many(states),
            native_canon.canonical_many(states),
        )
        assert np.array_equal(
            numpy_canon.orbit_sizes(states),
            native_canon.orbit_sizes(states),
        )

    def test_expand_and_violations_bit_identical_on_reachable_frontier(
        self,
    ):
        spec = FastSnapshotSpec([1, 2, 3], N3_IDENTITY)
        numpy_kernel, native_kernel, _ = _kernels(spec)
        # a real BFS frontier: every phase mix the expander can see
        frontier = np.array([spec.initial_state()], dtype=np.uint64)
        for _ in range(4):
            succ_n, counts_n = numpy_kernel.expand_level(frontier)
            succ_c, counts_c = native_kernel.expand_level(frontier)
            assert np.array_equal(succ_n, succ_c)
            assert np.array_equal(counts_n, counts_c)
            assert np.array_equal(
                numpy_kernel.violations(frontier),
                native_kernel.violations(frontier),
            )
            frontier, _ = numpy_kernel.unique_first(np.sort(succ_n))

    def test_unique_first_bit_identical_including_edge_shapes(self):
        spec = FastSnapshotSpec([1, 2], N2_CLASSES[0])
        numpy_kernel, native_kernel, _ = _kernels(spec)
        rng = np.random.default_rng(17)
        cases = [
            np.empty(0, dtype=np.uint64),
            np.array([42], dtype=np.uint64),
            np.array([0, 2**64 - 1, 0, 5, 5], dtype=np.uint64),
            np.full(513, 7, dtype=np.uint64),
            # narrow keys exercise the radix pass trimming
            rng.integers(0, 255, size=4096, dtype=np.uint64),
            rng.integers(0, 2**64 - 1, size=4096, dtype=np.uint64,
                         endpoint=True),
            np.sort(rng.integers(0, 2**40, size=4096, dtype=np.uint64)),
        ]
        for keys in cases:
            uniq_n, first_n = numpy_kernel.unique_first(keys)
            uniq_c, first_c = native_kernel.unique_first(keys)
            assert np.array_equal(uniq_n, uniq_c)
            assert np.array_equal(first_n, first_c)

    def test_por_c0c1_bit_identical_on_reachable_frontier(self):
        from repro.checker.batch import BatchAmpleSelector

        spec = FastSnapshotSpec([1, 2, 3], N3_IDENTITY)
        numpy_kernel, native_kernel, _ = _kernels(spec)
        tables = BatchAmpleSelector(numpy_kernel).tables
        frontier = np.array([spec.initial_state()], dtype=np.uint64)
        for _ in range(5):
            rows_n = numpy_kernel.por_c0c1(frontier, tables)
            rows_c = native_kernel.por_c0c1(frontier, tables)
            for left, right in zip(rows_n, rows_c):
                assert np.array_equal(left, right)
            succ, _counts = numpy_kernel.expand_level(frontier)
            frontier, _ = numpy_kernel.unique_first(np.sort(succ))


@requires_numpy
@requires_native
class TestExhaustiveN2Matrix:
    """Composed engine, exhaustive N=2: native == numpy field for field."""

    @pytest.mark.parametrize("wiring", N2_CLASSES)
    @pytest.mark.parametrize("symmetry", [False, True])
    @pytest.mark.parametrize("fingerprint", [False, True])
    @pytest.mark.parametrize("store", [None, "spill"])
    def test_unreduced_runs_are_field_identical(
        self, wiring, symmetry, fingerprint, store, tmp_path
    ):
        def run(kernel):
            config = (
                StoreConfig(backend="spill", directory=tmp_path / kernel)
                if store else None
            )
            return explore_batch(
                FastSnapshotSpec([1, 2], wiring),
                fingerprint=fingerprint, symmetry=symmetry,
                store=config, kernel=kernel,
            )

        numpy_run = asdict(run("numpy"))
        native_run = asdict(run("native"))
        # backend probe patterns differ per kernel; everything else is
        # part of the bit-identity contract
        numpy_run.pop("store_counters")
        native_run.pop("store_counters")
        assert numpy_run == native_run

    @pytest.mark.parametrize("wiring", N2_CLASSES)
    @pytest.mark.parametrize("symmetry", [False, True])
    def test_por_runs_are_field_identical_between_kernels(
        self, wiring, symmetry
    ):
        # vs the *scalar* selector POR is only verdict-conformant, but
        # the two batch kernels share the level-synchronous selector, so
        # between themselves even POR runs must match field for field
        def run(kernel):
            return asdict(explore_batch(
                FastSnapshotSpec([1, 2], wiring),
                symmetry=symmetry, por=True, kernel=kernel,
            ))

        assert run("numpy") == run("native")


@requires_numpy
@requires_native
class TestCacheIndex:
    """The spec-keyed index in front of the source-hash cache."""

    def test_warm_start_skips_source_generation(self, monkeypatch):
        import repro.checker.native.loader as loader
        from repro.checker.native.loader import NativeKernel
        from repro.checker.symmetry import FastCanonicalizer

        spec = FastSnapshotSpec([1, 2, 3], N3_IDENTITY)
        canon = FastCanonicalizer(spec)
        NativeKernel(spec, canon)  # ensure cache + index are populated
        calls = []
        real = loader.generate_source
        monkeypatch.setattr(
            loader, "generate_source",
            lambda *a, **k: (calls.append(1), real(*a, **k))[1],
        )
        NativeKernel(spec, canon)
        assert calls == []

    def test_stale_index_entry_falls_back_to_rebuild(
        self, monkeypatch, tmp_path
    ):
        from repro.checker.native import build
        from repro.checker.native.loader import NativeKernel

        monkeypatch.setenv("REPRO_NATIVE_CACHE", str(tmp_path))
        spec = FastSnapshotSpec([1, 2], N2_CLASSES[0])
        key = "0" * 32
        # an index entry naming an object that no longer exists
        (tmp_path / f"rk-idx-{key}.txt").write_text("rk-gone.so")
        assert build.cached_library_for(key) is None
        # and a fresh build both works and re-records the true mapping
        kernel = NativeKernel(spec)
        assert kernel.kernel_name == "native"
        assert list(tmp_path.glob("rk-*.so"))

    def test_spec_cache_key_separates_machines_and_tables(self):
        from repro.checker.native.generator import spec_cache_key
        from repro.checker.symmetry import FastCanonicalizer

        spec_a = FastSnapshotSpec([1, 2], N2_CLASSES[0])
        spec_b = FastSnapshotSpec([1, 2], N2_CLASSES[1])
        spec_n3 = FastSnapshotSpec([1, 2, 3], N3_IDENTITY)
        tables = tuple(FastCanonicalizer(spec_n3).element_tables)
        keys = {
            spec_cache_key(spec_a),
            spec_cache_key(spec_b),
            spec_cache_key(spec_n3),
            spec_cache_key(spec_n3, tables),
        }
        assert len(keys) == 4
        assert spec_cache_key(spec_n3, tables) == spec_cache_key(
            spec_n3, tables
        )


@requires_numpy
class TestDegradation:
    """No compiler (or an explicit opt-out) must never break a run."""

    def test_disable_env_reports_unavailable(self, monkeypatch):
        from repro.checker.native import loader

        monkeypatch.setenv("REPRO_NATIVE_DISABLE", "1")
        assert not loader.native_available()
        assert loader.resolve_kernel("auto") == "numpy"
        assert loader.resolve_kernel("native") == "numpy"

    def test_make_kernel_falls_back_to_numpy_silently(self, monkeypatch):
        monkeypatch.setenv("REPRO_NATIVE_DISABLE", "1")
        spec = FastSnapshotSpec([1, 2], N2_CLASSES[0])
        kernel = make_kernel(spec, "native", None)
        assert kernel.kernel_name == "numpy"

    def test_native_kernel_raises_unavailable(self, monkeypatch):
        from repro.checker.native.loader import (
            NativeKernel,
            NativeKernelUnavailable,
        )

        monkeypatch.setenv("REPRO_NATIVE_DISABLE", "1")
        with pytest.raises(NativeKernelUnavailable):
            NativeKernel(FastSnapshotSpec([1, 2], N2_CLASSES[0]))

    def test_cli_warns_once_and_exits_zero(self, monkeypatch, capsys):
        import repro.checker.native.loader as loader
        from repro.cli import main

        monkeypatch.setenv("REPRO_NATIVE_DISABLE", "1")
        monkeypatch.setattr(loader, "_warned_fallback", False)
        code = main(
            ["check", "--n", "2", "--engine", "batch", "--kernel", "native"]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert captured.err.count("--kernel native unavailable") == 1
        # the run itself proceeded on the numpy kernel
        assert "7235 states" in captured.out

    def test_explicit_numpy_kernel_never_warns(self, monkeypatch, capsys):
        import repro.checker.native.loader as loader
        from repro.cli import main

        monkeypatch.setattr(loader, "_warned_fallback", False)
        code = main(
            ["check", "--n", "2", "--engine", "batch", "--kernel", "numpy"]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "unavailable" not in captured.err
