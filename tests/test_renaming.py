"""Tests for adaptive renaming (Figure 4, Section 6)."""


import pytest
from hypothesis import given, settings, strategies as st

from repro.api import run_renaming
from repro.core.renaming import (
    RenamingMachine,
    bar_noy_dolev_name,
    renaming_bound,
)
from repro.tasks import AdaptiveRenamingTask, check_group_solution


class TestNameFormula:
    def test_singleton_snapshot_gets_name_one(self):
        assert bar_noy_dolev_name(frozenset({5}), 5) == 1

    def test_size_two_snapshot_names(self):
        snap = frozenset({3, 8})
        assert bar_noy_dolev_name(snap, 3) == 2
        assert bar_noy_dolev_name(snap, 8) == 3

    def test_size_three_snapshot_names(self):
        snap = frozenset({1, 2, 3})
        assert [bar_noy_dolev_name(snap, v) for v in (1, 2, 3)] == [4, 5, 6]

    def test_name_ranges_are_disjoint_per_size(self):
        """Size-z snapshots use names z(z-1)/2+1 .. z(z+1)/2, disjoint
        across sizes — the layout the paper describes."""
        used = set()
        for z in range(1, 8):
            snap = frozenset(range(z))
            names = {bar_noy_dolev_name(snap, v) for v in range(z)}
            assert names == set(
                range(z * (z - 1) // 2 + 1, z * (z + 1) // 2 + 1)
            )
            assert not (names & used) or z == 1
            used |= names

    def test_own_id_must_be_in_snapshot(self):
        with pytest.raises(ValueError):
            bar_noy_dolev_name(frozenset({1, 2}), 3)

    def test_bound_formula(self):
        assert [renaming_bound(m) for m in (1, 2, 3, 4)] == [1, 3, 6, 10]

    @given(st.sets(st.integers(0, 50), min_size=1, max_size=8))
    def test_names_within_bound_property(self, snapshot):
        snap = frozenset(snapshot)
        for member in snap:
            name = bar_noy_dolev_name(snap, member)
            assert 1 <= name <= renaming_bound(len(snap))

    @given(st.sets(st.integers(0, 50), min_size=1, max_size=8))
    def test_names_unique_within_one_snapshot(self, snapshot):
        snap = frozenset(snapshot)
        names = [bar_noy_dolev_name(snap, member) for member in snap]
        assert len(set(names)) == len(names)


class TestEndToEnd:
    @given(
        st.lists(st.sampled_from([1, 2, 3, 4]), min_size=2, max_size=6),
        st.integers(min_value=0, max_value=2**32),
    )
    @settings(max_examples=60, deadline=None)
    def test_names_unique_across_groups_and_bounded(self, group_ids, seed):
        result = run_renaming(group_ids, seed=seed)
        assert result.all_terminated
        names = result.outputs
        m = len(set(group_ids))
        for pid, name in names.items():
            assert 1 <= name <= renaming_bound(m), (group_ids, names)
        for p in range(len(group_ids)):
            for q in range(p + 1, len(group_ids)):
                if group_ids[p] != group_ids[q]:
                    assert names[p] != names[q], (group_ids, names)

    @given(
        st.lists(st.sampled_from(["x", "y", "z"]), min_size=2, max_size=5),
        st.integers(min_value=0, max_value=2**32),
    )
    @settings(max_examples=40, deadline=None)
    def test_group_solves_renaming_task(self, group_ids, seed):
        """Definition 3.4 against the adaptive-renaming task."""
        result = run_renaming(group_ids, seed=seed)
        inputs = {pid: group_ids[pid] for pid in range(len(group_ids))}
        check = check_group_solution(
            AdaptiveRenamingTask(), inputs, result.outputs
        )
        assert check.valid, check.reason

    def test_adaptivity_bound_counts_groups_not_processors(self):
        """Six processors in two groups must fit in 1..3, not 1..21."""
        for seed in range(20):
            group_ids = ["a", "b", "a", "b", "a", "b"]
            result = run_renaming(group_ids, seed=seed)
            assert all(1 <= name <= 3 for name in result.outputs.values()), (
                seed, result.outputs
            )

    def test_distinct_inputs_distinct_names(self):
        for seed in range(20):
            result = run_renaming([1, 2, 3, 4], seed=seed)
            names = list(result.outputs.values())
            assert len(set(names)) == len(names), (seed, result.outputs)

    def test_same_group_may_share_a_name(self):
        """Allowed by group solvability; with identical inputs and a
        symmetric schedule it actually happens."""
        result = run_renaming(["g", "g"], seed=0)
        assert set(result.outputs.values()) <= {1, 2, 3}


class TestMachineInterface:
    def test_snapshot_used_exposed(self):
        machine = RenamingMachine(2)
        state = machine.initial_state("a")
        assert machine.snapshot_used(state) is None
        assert machine.output(state) is None

    def test_register_value_matches_snapshot_machine(self):
        machine = RenamingMachine(3)
        assert machine.register_initial_value() == (
            machine.snapshot_machine.register_initial_value()
        )

    def test_name_consistent_with_snapshot(self):
        for seed in range(10):
            machine = RenamingMachine(3)
            from repro.api import build_runner

            runner = build_runner(machine, [5, 6, 7], seed=seed)
            result = runner.run(200_000)
            assert result.all_terminated
            for process in runner.processes:
                snap = machine.snapshot_used(process.state)
                assert process.output == bar_noy_dolev_name(
                    snap, process.my_input
                )
