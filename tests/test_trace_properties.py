"""Property tests tying the trace to live memory state.

The trace is the ground truth every analysis builds on; these tests
check it is *faithful*: replaying it reconstructs exactly the states
the memory actually went through, and its derived relations agree with
independent recomputation.
"""

from hypothesis import given, settings, strategies as st

from repro.api import build_runner
from repro.core import SnapshotMachine, WriteScanMachine
from repro.memory.trace import ReadEvent, WriteEvent


def run_and_observe(seed, machine_factory, steps=400):
    """Run with per-step memory snapshots taken alongside the trace."""
    machine = machine_factory()
    runner = build_runner(
        machine,
        list(range(1, machine.n_registers + 1))[: getattr(machine, "n_processors", machine.n_registers)]
        or [1],
        seed=seed,
    )
    snapshots = [runner.memory.snapshot()]
    for _ in range(steps):
        enabled = runner.enabled_pids()
        if not enabled:
            break
        pick = runner.scheduler.choose(0, enabled)
        runner.step_process(pick)
        snapshots.append(runner.memory.snapshot())
    return runner, snapshots


class TestMemoryHistoryFaithfulness:
    @given(st.integers(min_value=0, max_value=2**32))
    @settings(max_examples=30, deadline=None)
    def test_history_reconstruction_matches_live_snapshots(self, seed):
        runner, live = run_and_observe(seed, lambda: SnapshotMachine(3))
        machine_initial = SnapshotMachine(3).register_initial_value()
        trace = runner.memory.trace
        # The trace interleaves reads/writes/outputs; live snapshots
        # were taken after every *shared-memory* step only, so compare
        # against the reconstruction filtered to those events.
        reconstructed = trace.memory_history(3, initial_value=machine_initial)
        shared_indices = [0]
        for index, event in enumerate(trace):
            if isinstance(event, (ReadEvent, WriteEvent)):
                shared_indices.append(index + 1)
        filtered = [reconstructed[i] for i in shared_indices]
        assert filtered == live

    @given(st.integers(min_value=0, max_value=2**32))
    @settings(max_examples=30, deadline=None)
    def test_read_values_match_reconstruction(self, seed):
        """Every recorded read value equals the reconstructed register
        content at that moment."""
        runner, _ = run_and_observe(seed, lambda: WriteScanMachine(3))
        trace = runner.memory.trace
        history = trace.memory_history(3, initial_value=frozenset())
        for index, event in enumerate(trace):
            if isinstance(event, ReadEvent):
                assert history[index][event.physical_index] == event.value

    @given(st.integers(min_value=0, max_value=2**32))
    @settings(max_examples=30, deadline=None)
    def test_reads_from_matches_recomputation(self, seed):
        """`read_from` equals the last writer at the read's moment,
        recomputed independently from the write events."""
        runner, _ = run_and_observe(seed, lambda: WriteScanMachine(2))
        trace = runner.memory.trace
        last_writer = {}
        for event in trace:
            if isinstance(event, WriteEvent):
                last_writer[event.physical_index] = event.pid
            elif isinstance(event, ReadEvent):
                assert event.read_from == last_writer.get(
                    event.physical_index
                )

    @given(st.integers(min_value=0, max_value=2**32))
    @settings(max_examples=30, deadline=None)
    def test_overwrite_metadata_matches_reconstruction(self, seed):
        runner, _ = run_and_observe(seed, lambda: WriteScanMachine(2))
        trace = runner.memory.trace
        history = trace.memory_history(2, initial_value=frozenset())
        for index, event in enumerate(trace):
            if isinstance(event, WriteEvent):
                assert history[index][event.physical_index] == event.overwritten


class TestScheduleFaithfulness:
    @given(st.integers(min_value=0, max_value=2**32))
    @settings(max_examples=20, deadline=None)
    def test_schedule_matches_trace_pids(self, seed):
        """The runner's recorded schedule agrees with the trace's
        shared-memory events, in order."""
        runner, _ = run_and_observe(seed, lambda: SnapshotMachine(3))
        result = runner.result()
        trace_pids = [
            event.pid
            for event in result.trace
            if isinstance(event, (ReadEvent, WriteEvent))
        ]
        assert trace_pids == result.schedule

    @given(st.integers(min_value=0, max_value=2**32))
    @settings(max_examples=20, deadline=None)
    def test_step_counts_sum_to_schedule_length(self, seed):
        runner, _ = run_and_observe(seed, lambda: SnapshotMachine(3))
        result = runner.result()
        assert sum(result.trace.step_counts().values()) == len(result.schedule)
