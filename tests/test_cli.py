"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_defaults(self):
        args = build_parser().parse_args(["snapshot"])
        assert args.inputs == ["1", "2", "3"]
        assert args.seed == 0

    def test_check_n_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["check", "--n", "5"])


class TestCommands:
    def test_snapshot_success(self, capsys):
        assert main(["snapshot", "a", "b", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "processor 0" in out and "containment: True" in out

    def test_snapshot_integer_inputs_parsed(self, capsys):
        assert main(["snapshot", "10", "20", "--seed", "1"]) == 0
        assert "(input 10)" in capsys.readouterr().out

    def test_renaming_success(self, capsys):
        assert main(["renaming", "g", "h", "g", "--seed", "4"]) == 0
        out = capsys.readouterr().out
        assert "within bound: True" in out

    def test_consensus_success(self, capsys):
        assert main(["consensus", "x", "y", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "agreement: True" in out

    def test_figure2(self, capsys):
        assert main(["figure2"]) == 0
        out = capsys.readouterr().out
        assert "repeat every 36 steps" in out
        assert "sources: ['{1}']" in out

    def test_check_n2(self, capsys):
        assert main(["check", "--n", "2"]) == 0
        out = capsys.readouterr().out
        assert out.count("OK") == 2

    def test_check_n3_budgeted(self, capsys):
        assert main(["check", "--n", "3", "--budget", "3000"]) == 0
        out = capsys.readouterr().out
        assert "bounded" in out and "VIOLATED" not in out

    def test_lower_bound(self, capsys):
        assert main(["lower-bound", "--n", "3"]) == 0
        out = capsys.readouterr().out
        assert "erasure complete / twin-indistinguishable: True" in out

    def test_snapshot_with_extra_registers(self, capsys):
        assert main(["snapshot", "1", "2", "--registers", "4"]) == 0
