"""Tests for the command-line interface."""

import pytest

from repro.cli import _parse_mem, build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_defaults(self):
        args = build_parser().parse_args(["snapshot"])
        assert args.inputs == ["1", "2", "3"]
        assert args.seed == 0

    def test_check_n_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["check", "--n", "5"])

    def test_check_store_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["check", "--store", "redis"])

    def test_mem_cap_suffixes(self):
        assert _parse_mem("4096") == 4096
        assert _parse_mem("64k") == 64 * 1024
        assert _parse_mem("200M") == 200 * 1024 * 1024
        assert _parse_mem("1GiB") == 1 << 30
        assert _parse_mem("1.5m") == int(1.5 * (1 << 20))
        args = build_parser().parse_args(["check", "--mem-cap", "32M"])
        assert args.mem_cap == 32 * 1024 * 1024


class TestCommands:
    def test_snapshot_success(self, capsys):
        assert main(["snapshot", "a", "b", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "processor 0" in out and "containment: True" in out

    def test_snapshot_integer_inputs_parsed(self, capsys):
        assert main(["snapshot", "10", "20", "--seed", "1"]) == 0
        assert "(input 10)" in capsys.readouterr().out

    def test_renaming_success(self, capsys):
        assert main(["renaming", "g", "h", "g", "--seed", "4"]) == 0
        out = capsys.readouterr().out
        assert "within bound: True" in out

    def test_consensus_success(self, capsys):
        assert main(["consensus", "x", "y", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "agreement: True" in out

    def test_figure2(self, capsys):
        assert main(["figure2"]) == 0
        out = capsys.readouterr().out
        assert "repeat every 36 steps" in out
        assert "sources: ['{1}']" in out

    def test_check_n2(self, capsys):
        assert main(["check", "--n", "2"]) == 0
        out = capsys.readouterr().out
        assert out.count("OK") == 2

    def test_check_n3_budgeted(self, capsys):
        assert main(["check", "--n", "3", "--budget", "3000"]) == 0
        out = capsys.readouterr().out
        assert "bounded" in out and "VIOLATED" not in out

    def test_check_n3_store_backends_report_footprint(self, capsys, tmp_path):
        assert main([
            "check", "--n", "3", "--budget", "2000",
            "--store", "spill", "--store-dir", str(tmp_path),
        ]) == 0
        out = capsys.readouterr().out
        assert "[store:" in out and "VIOLATED" not in out

    def test_check_profile_writes_stats(self, capsys, tmp_path):
        import pstats

        target = tmp_path / "check.prof"
        assert main([
            "check", "--n", "2", "--profile", str(target),
        ]) == 0
        out = capsys.readouterr().out
        assert f"profile: exploration stats written to {target}" in out
        # The dump must be a loadable cProfile file covering the
        # exploration calls (not argument parsing or report printing).
        stats = pstats.Stats(str(target))
        assert stats.total_calls > 0

    def test_check_fingerprint_reports_collision_probability(self, capsys):
        assert main([
            "check", "--n", "3", "--budget", "2000", "--fingerprint",
        ]) == 0
        out = capsys.readouterr().out
        assert "collision probability" in out
        assert "warning" not in out  # tiny run, bound far below 1e-6

    def test_check_collision_warning_threshold(self, capsys):
        from repro import cli

        cli._report_collision(10_000_000)  # ~2.7e-6 > 1e-6
        out = capsys.readouterr().out
        assert "warning" in out and "1e-6" in out

    def test_check_checkpoint_resume_roundtrip(self, capsys, tmp_path):
        argv = ["check", "--n", "3", "--budget", "2000",
                "--checkpoint-dir", str(tmp_path)]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(["check", "--n", "3", "--budget", "2000",
                     "--resume", str(tmp_path)]) == 0
        replayed = capsys.readouterr().out
        assert [line for line in first.splitlines() if "wiring" in line] == [
            line for line in replayed.splitlines() if "wiring" in line
        ]

    def test_check_resume_refuses_other_config(self, capsys, tmp_path):
        assert main(["check", "--n", "3", "--budget", "2000",
                     "--checkpoint-dir", str(tmp_path)]) == 0
        capsys.readouterr()
        assert main(["check", "--n", "3", "--budget", "9999",
                     "--resume", str(tmp_path)]) == 2
        out = capsys.readouterr().out
        assert "configuration mismatch" in out and "budget" in out

    def test_check_resume_missing_directory(self, capsys, tmp_path):
        assert main(["check", "--resume", str(tmp_path / "nope")]) == 2
        assert "no such checkpoint directory" in capsys.readouterr().out

    def test_check_n2_with_store_runs_class_sweep_too(self, capsys, tmp_path):
        assert main(["check", "--n", "2", "--store", "mmap",
                     "--store-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "safety+wait-freedom OK" in out
        assert "store-backed class sweep (mmap)" in out

    def test_lower_bound(self, capsys):
        assert main(["lower-bound", "--n", "3"]) == 0
        out = capsys.readouterr().out
        assert "erasure complete / twin-indistinguishable: True" in out

    def test_snapshot_with_extra_registers(self, capsys):
        assert main(["snapshot", "1", "2", "--registers", "4"]) == 0
