"""Tests for the additional task definitions (§3.2's list) and the
immediate-snapshot negative result (paper's Conclusion)."""

import pytest

from repro.tasks import (
    ImmediateSnapshotTask,
    SetConsensusTask,
    WeakSymmetryBreakingTask,
    check_group_solution,
)


class TestImmediateSnapshotTask:
    task = ImmediateSnapshotTask()

    def test_valid_immediate_chain(self):
        # Classic IS output: blocks of simultaneity.
        assert self.task.is_valid({1: {1, 2}, 2: {1, 2}, 3: {1, 2, 3}})

    def test_snapshot_chain_without_immediacy_invalid(self):
        # 2 ∈ o[1] but o[2] ⊄ o[1]: legal snapshot, illegal IS.
        assert not self.task.is_valid({1: {1, 2}, 2: {1, 2, 3}, 3: {1, 2, 3}})

    def test_self_inclusion_required(self):
        assert not self.task.is_valid({1: {2}, 2: {1, 2}})

    def test_containment_required(self):
        assert not self.task.is_valid({1: {1, 2}, 2: {2, 3}, 3: {1, 2, 3}})

    def test_singleton(self):
        assert self.task.is_valid({5: {5}})

    def test_non_participant_in_output(self):
        assert not self.task.is_valid({1: {1, 9}})

    def test_explanations(self):
        message = self.task.explain_violation(
            {1: {1, 2}, 2: {1, 2, 3}, 3: {1, 2, 3}}
        )
        assert "immediacy" in message

    def test_single_participant_valid(self):
        assert self.task.is_valid({1: {1}})


class TestSetConsensusTask:
    def test_k1_is_consensus(self):
        task = SetConsensusTask(1)
        assert task.is_valid({1: 1, 2: 1})
        assert not task.is_valid({1: 1, 2: 2})

    def test_k2_allows_two_values(self):
        task = SetConsensusTask(2)
        assert task.is_valid({1: 1, 2: 2, 3: 1})
        assert not task.is_valid({1: 1, 2: 2, 3: 3})

    def test_values_must_be_participants(self):
        task = SetConsensusTask(2)
        assert not task.is_valid({1: 9})

    def test_empty_valid(self):
        assert SetConsensusTask(1).is_valid({})

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            SetConsensusTask(0)

    def test_explanations(self):
        task = SetConsensusTask(1)
        assert "exceed" in task.explain_violation({1: 1, 2: 2})
        assert "non-participant" in task.explain_violation({1: 9})


class TestWeakSymmetryBreaking:
    task = WeakSymmetryBreakingTask(3)

    def test_full_participation_must_break_symmetry(self):
        assert self.task.is_valid({1: 0, 2: 1, 3: 0})
        assert not self.task.is_valid({1: 0, 2: 0, 3: 0})
        assert not self.task.is_valid({1: 1, 2: 1, 3: 1})

    def test_partial_participation_unconstrained(self):
        assert self.task.is_valid({1: 0, 2: 0})
        assert self.task.is_valid({1: 1})

    def test_binary_outputs_only(self):
        assert not self.task.is_valid({1: 2, 2: 0, 3: 1})

    def test_needs_two_processors(self):
        with pytest.raises(ValueError):
            WeakSymmetryBreakingTask(1)

    def test_explanations(self):
        assert "symmetry" in self.task.explain_violation({1: 0, 2: 0, 3: 0})
        assert "non-binary" in self.task.explain_violation({1: 5, 2: 0, 3: 1})


class TestSnapshotAlgorithmIsNotImmediateSnapshot:
    """The paper's Conclusion: immediate snapshot is not group-solvable
    under (even just processor) anonymity.  Consistently, the Figure 3
    algorithm solves the snapshot task but *not* the immediate variant:
    executions whose outputs violate immediacy are easy to find."""

    @staticmethod
    def run_staggered_execution():
        """A schedule that produces non-immediate outputs:

        p1 takes one write step (so input 2 is in memory), p0 runs to
        completion (output {1,2} — it saw p1), then p1 and p2 run to
        completion (p1 now also sees 3, outputting {1,2,3}).  Then
        ``2 ∈ o[p0]`` but ``o[p1] ⊄ o[p0]``: immediacy violated, while
        containment holds — a legal snapshot, not an immediate one.
        """
        from repro.api import build_runner
        from repro.core import SnapshotMachine
        from repro.memory.wiring import WiringAssignment

        machine = SnapshotMachine(3)
        runner = build_runner(
            machine, [1, 2, 3], seed=None,
            wiring=WiringAssignment.identity(3, 3),
            scheduler=_Manual(),
        )
        runner.step_process(0)  # p0's first write of {1} to register 0
        runner.step_process(1)  # p1 overwrites it with {2}: 2 is in memory
        while runner.processes[0].status.value == "running":
            runner.step_process(0)  # p0 reads {2}, finishes with {1,2}
        for _ in range(100_000):
            enabled = [
                p.pid for p in runner.processes[1:]
                if p.status.value == "running"
            ]
            if not enabled:
                break
            for pid in enabled:
                runner.step_process(pid)
        return runner.result()

    def test_violation_exists(self):
        from repro.tasks import SnapshotTask

        result = self.run_staggered_execution()
        assert result.all_terminated
        outputs = {pid + 1: result.outputs[pid] for pid in range(3)}
        assert outputs[1] == frozenset({1, 2})
        assert 2 in outputs[1] and not outputs[2] <= outputs[1]
        assert SnapshotTask().is_valid(outputs)
        assert not ImmediateSnapshotTask().is_valid(outputs)

    def test_group_version_also_violated(self):
        """Definition 3.4 against the immediate-snapshot task fails on
        the same execution: with distinct inputs every group is a
        singleton, so no output-sample choice can save it."""
        result = self.run_staggered_execution()
        inputs = {pid: pid + 1 for pid in range(3)}
        check = check_group_solution(
            ImmediateSnapshotTask(), inputs, result.outputs
        )
        assert not check.valid
        assert "immediacy" in check.reason


class _Manual:
    def choose(self, step_index, enabled):
        return None
