"""The fingerprint-store subsystem: backends, guards, conformance.

Three layers of coverage:

- **unit**: each backend honours the :class:`FingerprintStore`
  contract (add-reports-newness, exact membership, deterministic
  iteration, bulk load), including the mmap table's zero-key slot and
  load limit and the spill store's spill/merge/Bloom machinery;
- **guards**: >64-bit keys and per-interpreter fingerprint functions
  are rejected loudly, and engine/store combinations that cannot work
  (object tables on disk, wait-freedom on a digest store) raise up
  front;
- **conformance**: the exhaustive N=2 exploration reports identical
  states/transitions/verdicts whatever the backend, with and without
  fingerprinting and symmetry reduction — the property the disk
  backends are allowed to exist under.
"""

import random

import pytest

import repro.checker.parallel as parallel
from repro.analysis.statistics import aggregate_store_statistics
from repro.checker import Explorer, SystemSpec
from repro.checker.fast_snapshot import FastSnapshotSpec
from repro.checker.fingerprint import fingerprint_state
from repro.checker.parallel import explore_sharded
from repro.checker.properties import SNAPSHOT_SAFETY
from repro.core import SnapshotMachine
from repro.memory.wiring import WiringAssignment
from repro.store import (
    BACKENDS,
    StoreConfig,
    StoreError,
    StoreFullError,
    require_cross_process_stable,
)

WIRING = ((0, 1), (0, 1))


def _keys(count, seed=7):
    rng = random.Random(seed)
    return list({rng.getrandbits(64) for _ in range(count)})


def _make(backend, tmp_path, mem_cap=None):
    config = StoreConfig(
        backend=backend,
        directory=str(tmp_path / backend),
        **({"mem_cap": mem_cap} if mem_cap is not None else {}),
    )
    return config.create()


# ----------------------------------------------------------------------
# The backend contract, uniformly
# ----------------------------------------------------------------------


class TestBackendContract:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_add_contains_len_iter(self, backend, tmp_path):
        store = _make(backend, tmp_path)
        keys = _keys(2000)
        try:
            for key in keys:
                assert store.add(key)
            for key in keys:
                assert not store.add(key)  # re-add reports "already there"
                assert key in store
            assert len(store) == len(keys)
            missing = next(k for k in range(1, 100) if k not in set(keys))
            assert missing not in store
            assert sorted(store) == sorted(keys)
        finally:
            store.close()

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_load_bulk_inserts_and_counts(self, backend, tmp_path):
        store = _make(backend, tmp_path)
        keys = _keys(500)
        try:
            assert store.load(keys) == len(keys)
            assert store.load(keys) == 0  # idempotent
            assert len(store) == len(keys)
        finally:
            store.close()

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_counters_report_entries(self, backend, tmp_path):
        store = _make(backend, tmp_path)
        try:
            store.load(_keys(100))
            assert store.counters()["entries"] == 100
        finally:
            store.close()

    @pytest.mark.parametrize("backend", ["mmap", "spill"])
    def test_wide_keys_are_rejected(self, backend, tmp_path):
        store = _make(backend, tmp_path)
        try:
            with pytest.raises(StoreError, match="64-bit"):
                store.add(1 << 64)
        finally:
            store.close()


class TestBulkContract:
    """``contains_many``/``add_many`` — the batch engine's probe unit.

    The base class defaults loop the scalar methods, so the contract
    (exactly ``[key in store for ...]`` / per-key ``add`` in order)
    must hold identically on backends with bespoke bulk paths (ram's
    set ops, spill's per-run streaming pass).
    """

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_bulk_matches_scalar_loop(self, backend, tmp_path):
        store = _make(backend, tmp_path)
        keys = sorted(_keys(800))
        present, absent = keys[::2], keys[1::2]
        try:
            assert store.add_many(present) == len(present)
            probe = sorted(present[:100] + absent[:100])
            assert store.contains_many(probe) == [k in store for k in probe]
            # re-adding a mixed batch counts only the genuinely new keys
            mixed = sorted(present[:50] + absent[:50])
            assert store.add_many(mixed) == 50
            assert len(store) == len(present) + 50
        finally:
            store.close()

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_empty_batches_are_noops(self, backend, tmp_path):
        store = _make(backend, tmp_path)
        try:
            assert store.add_many([]) == 0
            assert store.contains_many([]) == []
        finally:
            store.close()

    def test_spill_bulk_writes_sorted_runs_natively(self, tmp_path):
        # A level-sized batch of fresh keys must land as one sorted run
        # file instead of churning through repeated buffer spills.
        store = _make("spill", tmp_path, mem_cap=64 * 1024)
        keys = sorted(_keys(20_000))
        try:
            spills_before = store.counters()["spills"]
            assert store.add_many(keys) == len(keys)
            assert store.counters()["spills"] == spills_before + 1
            assert store.contains_many(keys) == [True] * len(keys)
            assert list(store) == keys  # runs stream in ascending order
        finally:
            store.close()

    def test_spill_bulk_membership_survives_merge(self, tmp_path):
        store = _make("spill", tmp_path, mem_cap=64 * 1024)
        first, second = sorted(_keys(12_000, seed=1)), sorted(_keys(12_000, seed=2))
        overlap = sorted(set(first) & set(second))
        try:
            store.add_many(first)
            added = store.add_many(second)
            assert added == len(set(second) - set(first))
            everything = sorted(set(first) | set(second))
            assert store.contains_many(everything) == [True] * len(everything)
            assert len(store) == len(everything)
            assert store.contains_many(overlap) == [True] * len(overlap)
        finally:
            store.close()


class TestMmapStore:
    def test_zero_key_roundtrip(self, tmp_path):
        store = _make("mmap", tmp_path)
        try:
            assert 0 not in store
            assert store.add(0)
            assert not store.add(0)
            assert 0 in store
            assert 0 in list(store)
        finally:
            store.close()

    def test_full_table_suggests_spill(self, tmp_path):
        # 8 KiB -> the 1024-slot minimum table; the 7/8 load limit
        # trips before slot exhaustion.
        store = _make("mmap", tmp_path, mem_cap=8192)
        try:
            with pytest.raises(StoreFullError, match="spill"):
                for key in _keys(1000):
                    store.add(key)
        finally:
            store.close()

    def test_file_bytes_is_table_size(self, tmp_path):
        store = _make("mmap", tmp_path, mem_cap=8192)
        try:
            assert store.file_bytes() == 1024 * 8
        finally:
            store.close()


class TestSpillStore:
    def test_spills_and_merges_preserve_membership(self, tmp_path):
        # The minimum buffer is 1024 keys; 7k keys force 6 spills, which
        # trips the merge-all consolidation.
        store = _make("spill", tmp_path, mem_cap=4096)
        keys = _keys(7000)
        try:
            for key in keys:
                assert store.add(key)
            counters = store.counters()
            assert counters["spills"] >= 6
            assert counters["merges"] >= 1
            for key in keys:
                assert key in store
            assert sorted(store) == sorted(keys)
            assert store.file_bytes() > 0
        finally:
            store.close()

    def test_bloom_short_circuits_misses(self, tmp_path):
        store = _make("spill", tmp_path, mem_cap=4096)
        try:
            store.load(_keys(3000, seed=1))
            hits = sum(1 for key in _keys(3000, seed=2) if key in store)
            counters = store.counters()
            assert hits == 0
            assert counters["bloom_skips"] > 0
        finally:
            store.close()

    def test_parallel_merge_matches_serial(self, tmp_path, monkeypatch):
        # Shrink the parallel-merge floor so the test-sized key set
        # takes the worker-pool path; the serial twin is the oracle.
        from repro.store import spill as spill_module

        monkeypatch.setattr(spill_module, "_PARALLEL_MERGE_MIN", 1000)
        serial = StoreConfig(
            backend="spill", directory=str(tmp_path / "serial"),
            mem_cap=4096,
        ).create()
        parallel = StoreConfig(
            backend="spill", directory=str(tmp_path / "parallel"),
            mem_cap=4096, merge_jobs=4,
        ).create()
        keys = _keys(20_000)
        try:
            for key in keys:
                assert serial.add(key)
                assert parallel.add(key)
            assert list(serial) == list(parallel)  # both ascending
            assert len(parallel) == len(keys)
            probes = _keys(2000, seed=3)
            assert all(
                (key in parallel) == (key in serial) for key in probes
            )
            counters = parallel.counters()
            assert counters["merges"] >= 1
            # A parallel merge leaves one (disjoint, ordered) run per
            # partition instead of one run total.
            assert counters["runs"] >= 1
            assert counters["merge_wall_ms"] >= 0
        finally:
            serial.close()
            parallel.close()

    def test_merge_jobs_validation(self):
        with pytest.raises(StoreError, match="merge_jobs"):
            StoreConfig(backend="spill", merge_jobs=-1)


# ----------------------------------------------------------------------
# Configuration and guards
# ----------------------------------------------------------------------


class TestGuards:
    def test_unknown_backend_rejected(self):
        with pytest.raises(StoreError, match="unknown store backend"):
            StoreConfig(backend="redis")

    def test_nonpositive_mem_cap_rejected(self):
        with pytest.raises(StoreError, match="mem_cap"):
            StoreConfig(backend="spill", mem_cap=0)

    def test_per_interpreter_fingerprint_rejected(self):
        with pytest.raises(StoreError, match="PYTHONHASHSEED"):
            require_cross_process_stable(fingerprint_state)

    def test_sharded_run_refuses_fingerprint_state(self, monkeypatch):
        monkeypatch.setattr(
            parallel, "effective_jobs", lambda requested: requested
        )
        with pytest.raises(StoreError, match="fingerprint_state"):
            explore_sharded(
                [1, 2], WIRING, jobs=2, fingerprint_fn=fingerprint_state
            )

    def test_wait_freedom_requires_ram_store(self, tmp_path):
        spec = FastSnapshotSpec([1, 2], WIRING)
        config = StoreConfig(backend="spill", directory=str(tmp_path))
        with pytest.raises(ValueError, match="wait"):
            spec.explore(check_wait_freedom=True, store=config)

    def test_generic_explorer_requires_fingerprint_for_disk(self, tmp_path):
        spec = SystemSpec(
            SnapshotMachine(2), [1, 2], WiringAssignment.identity(2, 2)
        )
        config = StoreConfig(backend="mmap", directory=str(tmp_path))
        with pytest.raises(ValueError, match="fingerprint"):
            Explorer(spec, SNAPSHOT_SAFETY, store=config)


# ----------------------------------------------------------------------
# Exploration conformance across backends
# ----------------------------------------------------------------------


def _signature(result):
    return (
        result.states, result.transitions, result.ok, result.complete,
        result.covered_states,
    )


class TestExplorationConformance:
    @pytest.mark.parametrize("fingerprint", [False, True])
    @pytest.mark.parametrize("symmetry", [False, True])
    def test_exhaustive_n2_identical_across_backends(
        self, tmp_path, fingerprint, symmetry
    ):
        spec = FastSnapshotSpec([1, 2], WIRING)
        signatures = {}
        for backend in BACKENDS:
            config = StoreConfig(
                backend=backend, directory=str(tmp_path / backend)
            )
            result = spec.explore(
                fingerprint=fingerprint, symmetry=symmetry, store=config
            )
            signatures[backend] = _signature(result)
            assert result.store_counters is not None
            assert result.store_counters["entries"] == result.states
        assert len(set(signatures.values())) == 1, signatures

    def test_generic_fingerprint_explorer_matches_on_disk(self, tmp_path):
        spec = SystemSpec(
            SnapshotMachine(2), [1, 2], WiringAssignment.identity(2, 2)
        )
        baseline = Explorer(spec, SNAPSHOT_SAFETY, fingerprint=True).run()
        config = StoreConfig(backend="spill", directory=str(tmp_path))
        on_disk = Explorer(
            spec, SNAPSHOT_SAFETY, fingerprint=True, store=config
        ).run()
        assert (baseline.states, baseline.transitions, baseline.ok) == (
            on_disk.states, on_disk.transitions, on_disk.ok,
        )
        assert on_disk.store_counters["entries"] == on_disk.states

    def test_default_store_reports_no_counters(self):
        result = FastSnapshotSpec([1, 2], WIRING).explore()
        assert result.store_counters is None

    def test_store_statistics_aggregate(self, tmp_path):
        spec = FastSnapshotSpec([1, 2], WIRING)
        config = StoreConfig(backend="ram")
        results = [spec.explore(store=config) for _ in range(2)]
        stats = aggregate_store_statistics(results + [spec.explore()])
        assert stats.entries == sum(r.states for r in results)
        assert stats.file_bytes == 0
        assert "stored keys" in stats.summary()

    def test_store_statistics_fold_merge_wall_time(self):
        from repro.analysis import StoreStatistics

        stats = StoreStatistics(
            entries=10, file_bytes=4096, merges=2, merge_wall_ms=34
        )
        assert "2 merges in 34 ms" in stats.summary()
