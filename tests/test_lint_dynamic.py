"""Metamorphic orbit-invariance verifier (``repro lint --dynamic``).

Positive direction: all seven shipped properties verify on their
natural systems with a non-trivial stabilizer group.  Negative
direction: a deliberately asymmetric property, an undeclared property,
and a trivial-group configuration must each be rejected — a verifier
that cannot fail verifies nothing.
"""

import pytest

from repro.checker.properties import consensus_agreement_and_validity
from repro.checker.system import SystemSpec
from repro.core.consensus import ConsensusMachine
from repro.core.snapshot import SnapshotMachine
from repro.lint import builtin_verifications, reachable_sample, verify_invariant
from repro.memory.wiring import WiringAssignment


def _snapshot_spec(inputs):
    return SystemSpec(
        SnapshotMachine(2), list(inputs), WiringAssignment.identity(2, 2)
    )


class TestBuiltinBattery:
    @pytest.fixture(scope="class")
    def results(self):
        return builtin_verifications(max_states=80)

    def test_covers_all_seven_shipped_properties(self, results):
        assert len(results) == 7
        names = {r.property_name for r in results}
        assert "consensus_agreement_and_validity" in names
        assert "renaming_names_valid" in names
        assert len(names) == 7

    def test_every_property_verifies(self, results):
        bad = [r for r in results if not r.ok]
        assert bad == [], [(r.property_name, r.mismatches) for r in bad]

    def test_no_battery_is_vacuous(self, results):
        # Each system is chosen so the stabilizer is non-trivial; in
        # particular the renaming battery only has orbit elements
        # because RenamingMachine now provides the rename hooks.
        assert all(r.elements >= 1 for r in results)
        assert all(r.states_checked > 1 for r in results)


class TestNegativeControls:
    def test_asymmetric_property_is_caught(self):
        spec = _snapshot_spec([1, 1])

        def first_processor_ahead(spec_, state):
            a, b = repr(state.locals[0]), repr(state.locals[1])
            return "processor 0 ahead" if a > b else None

        first_processor_ahead.permutation_invariant = True
        result = verify_invariant(
            first_processor_ahead, spec, system="snapshot, equal inputs",
            max_states=200,
        )
        assert not result.ok
        assert any("verdict differs across orbit" in m for m in result.mismatches)

    def test_undeclared_property_is_refused(self):
        def undeclared(spec_, state):
            return None

        result = verify_invariant(undeclared, _snapshot_spec([1, 1]))
        assert not result.ok
        assert "not declared @permutation_invariant" in result.mismatches[0]

    def test_trivial_stabilizer_is_flagged_vacuous(self):
        # ConsensusMachine has no rename hooks (the repr tie-break is
        # deliberately non-equivariant), so distinct proposals leave
        # only the identity element — a vacuous orbit check.
        spec = SystemSpec(
            ConsensusMachine(2), ["a", "b"], WiringAssignment.identity(2, 2)
        )
        result = verify_invariant(
            consensus_agreement_and_validity, spec,
            system="consensus, distinct proposals",
        )
        assert not result.ok
        assert "trivial" in result.mismatches[0]


class TestReachableSample:
    def test_bounded_and_rooted_at_initial(self):
        spec = _snapshot_spec([1, 2])
        sample = reachable_sample(spec, 25)
        assert len(sample) == 25
        assert sample[0] == spec.initial_state()
        assert len(set(sample)) == len(sample)

    def test_bfs_order_is_deterministic_prefix(self):
        spec = _snapshot_spec([1, 2])
        assert reachable_sample(spec, 10) == reachable_sample(spec, 20)[:10]
