"""Dynamic verifiers (``repro lint --dynamic``): orbit and footprint.

Positive direction: all seven shipped properties orbit-verify on their
natural systems with a non-trivial stabilizer group, and every shipped
``@visibility_footprint`` / ``por_footprint`` declaration survives the
footprint cross-check on BFS-sampled reachable states.  Negative
direction: a deliberately asymmetric property, an undeclared property,
a trivial-group configuration, a too-narrow visibility declaration,
and a lying machine footprint must each be rejected — a verifier that
cannot fail verifies nothing.
"""

import pytest

from repro.checker.por import declared_machine_footprint
from repro.checker.properties import (
    consensus_agreement_and_validity,
    visibility_footprint,
)
from repro.checker.system import SystemSpec
from repro.core.consensus import ConsensusMachine
from repro.core.renaming import RenamingMachine
from repro.core.snapshot import SnapshotMachine
from repro.core.write_scan import WriteScanMachine
from repro.lint import (
    builtin_footprint_verifications,
    builtin_verifications,
    reachable_sample,
    verify_invariant,
    verify_machine_footprint,
    verify_visibility_footprint,
)
from repro.memory.wiring import WiringAssignment


def _snapshot_spec(inputs):
    return SystemSpec(
        SnapshotMachine(2), list(inputs), WiringAssignment.identity(2, 2)
    )


class TestBuiltinBattery:
    @pytest.fixture(scope="class")
    def results(self):
        return builtin_verifications(max_states=80)

    def test_covers_all_seven_shipped_properties(self, results):
        assert len(results) == 7
        names = {r.property_name for r in results}
        assert "consensus_agreement_and_validity" in names
        assert "renaming_names_valid" in names
        assert len(names) == 7

    def test_every_property_verifies(self, results):
        bad = [r for r in results if not r.ok]
        assert bad == [], [(r.property_name, r.mismatches) for r in bad]

    def test_no_battery_is_vacuous(self, results):
        # Each system is chosen so the stabilizer is non-trivial; in
        # particular the renaming battery only has orbit elements
        # because RenamingMachine now provides the rename hooks.
        assert all(r.elements >= 1 for r in results)
        assert all(r.states_checked > 1 for r in results)


class TestNegativeControls:
    def test_asymmetric_property_is_caught(self):
        spec = _snapshot_spec([1, 1])

        def first_processor_ahead(spec_, state):
            a, b = repr(state.locals[0]), repr(state.locals[1])
            return "processor 0 ahead" if a > b else None

        first_processor_ahead.permutation_invariant = True
        result = verify_invariant(
            first_processor_ahead, spec, system="snapshot, equal inputs",
            max_states=200,
        )
        assert not result.ok
        assert any("verdict differs across orbit" in m for m in result.mismatches)

    def test_undeclared_property_is_refused(self):
        def undeclared(spec_, state):
            return None

        result = verify_invariant(undeclared, _snapshot_spec([1, 1]))
        assert not result.ok
        assert "not declared @permutation_invariant" in result.mismatches[0]

    def test_trivial_stabilizer_is_flagged_vacuous(self):
        # ConsensusMachine has no rename hooks (the repr tie-break is
        # deliberately non-equivariant), so distinct proposals leave
        # only the identity element — a vacuous orbit check.
        spec = SystemSpec(
            ConsensusMachine(2), ["a", "b"], WiringAssignment.identity(2, 2)
        )
        result = verify_invariant(
            consensus_agreement_and_validity, spec,
            system="consensus, distinct proposals",
        )
        assert not result.ok
        assert "trivial" in result.mismatches[0]


class TestFootprintBattery:
    @pytest.fixture(scope="class")
    def results(self):
        return builtin_footprint_verifications(max_states=80)

    def test_covers_properties_and_machines(self, results):
        # 7 property entries + one machine entry per battery system.
        assert len(results) == 10
        assert all(r.kind == "footprint" for r in results)
        names = {r.property_name for r in results}
        assert "SnapshotMachine.por_footprint" in names
        assert "ConsensusMachine.por_footprint" in names
        assert "RenamingMachine.por_footprint" in names

    def test_every_shipped_declaration_verifies(self, results):
        bad = [r for r in results if not r.ok]
        assert bad == [], [(r.property_name, r.mismatches) for r in bad]

    def test_orbit_battery_shape_is_unchanged(self):
        # The footprint battery must not leak into the orbit one.
        assert len(builtin_verifications(max_states=40)) == 7


class TestVisibilityFootprintVerifier:
    def test_too_narrow_declaration_is_caught(self):
        spec = _snapshot_spec([1, 2])

        @visibility_footprint(registers=(0,))
        def depends_on_register_one(spec_, state):
            initial = spec_.machine.register_initial_value()
            return "saw it" if state.registers[1] != initial else None

        result = verify_visibility_footprint(
            depends_on_register_one, spec, system="snapshot n=2",
            max_states=200,
        )
        assert not result.ok
        assert any(
            "invisible under the declared footprint" in m
            for m in result.mismatches
        )

    def test_honest_declaration_passes(self):
        spec = _snapshot_spec([1, 2])

        @visibility_footprint(registers="all")
        def depends_on_any_register(spec_, state):
            initial = spec_.machine.register_initial_value()
            return "saw it" if state.registers[1] != initial else None

        result = verify_visibility_footprint(
            depends_on_any_register, spec, max_states=200
        )
        assert result.ok and result.elements > 0

    def test_undeclared_property_passes_vacuously(self):
        def no_declaration(spec_, state):
            return None

        result = verify_visibility_footprint(
            no_declaration, _snapshot_spec([1, 2])
        )
        assert result.ok and result.elements == 0


class TestMachineFootprintVerifier:
    def test_lying_machine_is_caught(self):
        class LyingWriteScan(WriteScanMachine):
            por_footprint = {"writes": "none", "reads": "none"}

        spec = SystemSpec(
            LyingWriteScan(2), [1, 2], WiringAssignment.identity(2, 2)
        )
        result = verify_machine_footprint(spec, max_states=50)
        assert not result.ok
        assert any("writes='none' is declared" in m for m in result.mismatches)

    def test_honest_machine_passes(self):
        spec = _snapshot_spec([1, 2])
        result = verify_machine_footprint(spec, max_states=50)
        assert result.ok and result.elements > 0

    def test_undeclared_machine_passes_vacuously(self):
        class Undeclared(WriteScanMachine):
            por_footprint = None

        spec = SystemSpec(
            Undeclared(2), [1, 2], WiringAssignment.identity(2, 2)
        )
        result = verify_machine_footprint(spec, max_states=50)
        assert result.ok and result.states_checked == 0


class TestDeclaredMachineFootprint:
    def test_direct_declaration_resolves_at_depth_zero(self):
        footprint, depth = declared_machine_footprint(SnapshotMachine(2))
        assert footprint == {"writes": "unwritten", "reads": "all"}
        assert depth == 0

    def test_delegate_chains_resolve_with_hop_count(self):
        for machine in (ConsensusMachine(2), RenamingMachine(2)):
            resolved = declared_machine_footprint(machine)
            assert resolved is not None, type(machine).__name__
            footprint, depth = resolved
            assert footprint == {"writes": "unwritten", "reads": "all"}
            assert depth == 1

    def test_no_declaration_resolves_to_none(self):
        assert declared_machine_footprint(object()) is None


class TestReachableSample:
    def test_bounded_and_rooted_at_initial(self):
        spec = _snapshot_spec([1, 2])
        sample = reachable_sample(spec, 25)
        assert len(sample) == 25
        assert sample[0] == spec.initial_state()
        assert len(set(sample)) == len(sample)

    def test_bfs_order_is_deterministic_prefix(self):
        spec = _snapshot_spec([1, 2])
        assert reachable_sample(spec, 10) == reachable_sample(spec, 20)[:10]
