"""Tests for group solvability (Section 3.2, Definition 3.4).

Includes the paper's worked example: processors 1..4 in groups
A={1}, B={2,3}, C={4}, outputs {A,B,C}, {A,B}, {B,C}, {A,B,C} — a legal
group solution of the snapshot task even though the two members of B
return incomparable sets.
"""


from repro.tasks import (
    ConsensusTask,
    SnapshotTask,
    check_group_solution,
    groups_from_inputs,
    iter_output_samples,
)
from repro.tasks.group import GroupCheckResult


class TestGroupsFromInputs:
    def test_partition(self):
        inputs = {0: "A", 1: "B", 2: "B", 3: "C"}
        assert groups_from_inputs(inputs) == {
            "A": (0,), "B": (1, 2), "C": (3,)
        }

    def test_members_sorted(self):
        assert groups_from_inputs({5: "g", 1: "g"})["g"] == (1, 5)

    def test_empty(self):
        assert groups_from_inputs({}) == {}


class TestOutputSamples:
    def test_one_sample_when_outputs_identical(self):
        groups = {"A": (0, 1)}
        outputs = {0: frozenset({"A"}), 1: frozenset({"A"})}
        samples = list(iter_output_samples(groups, outputs))
        assert samples == [{"A": frozenset({"A"})}]

    def test_product_over_distinct_outputs(self):
        groups = {"A": (0, 1), "B": (2,)}
        outputs = {0: "x", 1: "y", 2: "z"}
        samples = list(iter_output_samples(groups, outputs))
        assert {tuple(sorted(s.items())) for s in samples} == {
            (("A", "x"), ("B", "z")),
            (("A", "y"), ("B", "z")),
        }

    def test_groups_without_outputs_are_skipped(self):
        groups = {"A": (0,), "B": (1,)}
        outputs = {0: "x"}  # B participated but never terminated
        samples = list(iter_output_samples(groups, outputs))
        assert samples == [{"A": "x"}]

    def test_no_outputs_yields_empty_sample(self):
        samples = list(iter_output_samples({"A": (0,)}, {}))
        assert samples == [{}]


class TestPaperWorkedExample:
    """Section 3.2's 4-processor example, verbatim."""

    inputs = {1: "A", 2: "B", 3: "B", 4: "C"}
    outputs = {
        1: frozenset({"A", "B", "C"}),
        2: frozenset({"A", "B"}),
        3: frozenset({"B", "C"}),
        4: frozenset({"A", "B", "C"}),
    }

    def test_is_a_legal_group_solution(self):
        check = check_group_solution(SnapshotTask(), self.inputs, self.outputs)
        assert check.valid, check.reason

    def test_members_of_b_are_incomparable(self):
        second, third = self.outputs[2], self.outputs[3]
        assert not (second <= third or third <= second)

    def test_incomparability_across_groups_is_refuted(self):
        """Moving processor 3 into its own group D makes the same
        outputs an invalid group solution: incomparable outputs now span
        two groups."""
        inputs = {1: "A", 2: "B", 3: "D", 4: "C"}
        outputs = dict(self.outputs)
        outputs[3] = frozenset({"B", "C", "D"})
        outputs[2] = frozenset({"A", "B"})
        check = check_group_solution(SnapshotTask(), inputs, outputs)
        assert not check.valid
        assert check.counterexample is not None

    def test_sample_count(self):
        groups = groups_from_inputs(self.inputs)
        samples = list(iter_output_samples(groups, self.outputs))
        # A has 1 distinct output, B has 2, C has 1 -> 2 samples.
        assert len(samples) == 2


class TestCheckGroupSolution:
    def test_counterexample_reported_with_reason(self):
        inputs = {0: "A", 1: "B"}
        outputs = {0: frozenset({"A"}), 1: frozenset({"B"})}
        check = check_group_solution(SnapshotTask(), inputs, outputs)
        assert not check.valid
        assert "incomparable" in check.reason

    def test_unterminated_members_constrain_nothing(self):
        inputs = {0: "A", 1: "A", 2: "B"}
        outputs = {0: frozenset({"A"}), 2: frozenset({"A", "B"})}
        check = check_group_solution(SnapshotTask(), inputs, outputs)
        assert check.valid

    def test_consensus_group_check(self):
        inputs = {0: "x", 1: "x", 2: "y"}
        check = check_group_solution(
            ConsensusTask(), inputs, {0: "x", 1: "x", 2: "x"}
        )
        assert check.valid

    def test_consensus_disagreement_across_groups(self):
        inputs = {0: "x", 1: "y"}
        check = check_group_solution(ConsensusTask(), inputs, {0: "x", 1: "y"})
        assert not check.valid

    def test_consensus_disagreement_within_group_also_invalid(self):
        """Consensus requires a unique output even inside a group: any
        sample picks one member, but two members with different outputs
        produce two samples with different constants... each constant
        sample is valid, so the group check passes — matching the
        definition (picking ONE representative per group)."""
        inputs = {0: "x", 1: "x"}
        check = check_group_solution(ConsensusTask(), inputs, {0: "x", 1: "x"})
        assert check.valid

    def test_sampling_fallback_flagged(self):
        """With a tiny cap the checker switches to sampling mode."""
        inputs = {0: "A", 1: "A", 2: "B", 3: "B"}
        outputs = {
            0: frozenset({"A"}),
            1: frozenset({"A", "B"}),
            2: frozenset({"A", "B"}),
            3: frozenset({"B", "A"}),
        }
        check = check_group_solution(
            SnapshotTask(), inputs, outputs, max_samples=1
        )
        assert isinstance(check, GroupCheckResult)
        # Either it found a violation within a sample budget or it
        # reports non-exhaustive validation.
        assert check.valid is True or check.counterexample is not None
        if check.valid:
            assert not check.exhaustive
