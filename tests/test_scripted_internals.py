"""Unit tests for the scripted-execution builders and steering tools."""

import pytest

from repro.sim.non_linearizable import SteerablePolicy
from repro.sim.ops import Read, Write
from repro.sim.scripted import (
    EXTENSION_INPUTS,
    FIGURE2_EXPECTED_ROWS,
    build_extension_runner,
    build_figure2_runner,
    extension_schedule,
    figure2_schedule,
    figure2_wiring,
)


class TestFigure2Schedule:
    def test_one_cycle_length(self):
        # Row 1 is two write+scan iterations (8 steps); rows 2-13 are
        # one each (4 steps).
        assert len(figure2_schedule(1)) == 8 + 12 * 4

    def test_zero_extra_cycles_equals_one(self):
        assert figure2_schedule(0) == figure2_schedule(1)

    def test_step_multiset_per_cycle(self):
        base = figure2_schedule(1)
        extended = figure2_schedule(2)
        cycle = extended[len(base):]
        assert len(cycle) == 36
        assert cycle.count(0) == cycle.count(1) == cycle.count(2) == 12

    def test_expected_rows_are_well_formed(self):
        assert len(FIGURE2_EXPECTED_ROWS) == 13
        for row in FIGURE2_EXPECTED_ROWS:
            assert len(row.registers) == 3
            assert len(row.views) == 3
        # Row 13 repeats row 4 (the paper's "(same as 4)").
        assert FIGURE2_EXPECTED_ROWS[12].registers == (
            FIGURE2_EXPECTED_ROWS[3].registers
        )


class TestExtensionSchedule:
    def test_prefix_matches_figure2_rows_1_to_4(self):
        schedule = extension_schedule(n_cycles=0)
        assert schedule[:20] == figure2_schedule(1)[:20]
        # Then the two initial non-perturbing writes of p and p'.
        assert schedule[20:22] == [3, 4]

    def test_cycles_contain_piggybacked_steps(self):
        schedule = extension_schedule(n_cycles=2)
        cycle_part = schedule[22:]
        assert 3 in cycle_part and 4 in cycle_part

    def test_pids_in_range(self):
        assert set(extension_schedule(n_cycles=6)) <= {0, 1, 2, 3, 4}

    def test_runner_accepts_any_cycle_count(self):
        for cycles in (1, 3, 7):
            runner = build_extension_runner(
                n_cycles=cycles, detect_lasso=False
            )
            result = runner.run(10 ** 6)
            assert result.steps == len(extension_schedule(cycles))

    def test_inputs_tuple(self):
        assert EXTENSION_INPUTS == (1, 2, 3, 1, 1)


class TestWiring:
    def test_three_processor_wiring(self):
        wiring = figure2_wiring(3)
        # p1 rotated by one; p2, p3 identity.
        assert wiring[0].permutation == (1, 2, 0)
        assert wiring[1].permutation == (0, 1, 2)
        assert wiring[2].permutation == (0, 1, 2)

    def test_extension_processors_share_rotation(self):
        wiring = figure2_wiring(5)
        assert wiring[3].permutation == wiring[0].permutation
        assert wiring[4].permutation == wiring[0].permutation


class TestSteerablePolicy:
    def test_default_takes_first(self):
        policy = SteerablePolicy()
        ops = (Write(0, "a"), Write(1, "a"))
        assert policy(ops) is ops[0]

    def test_preference_selects_register(self):
        policy = SteerablePolicy()
        policy.prefer(1)
        ops = (Write(0, "a"), Write(1, "a"))
        assert policy(ops) is ops[1]

    def test_preference_is_one_shot(self):
        policy = SteerablePolicy()
        policy.prefer(1)
        ops = (Write(0, "a"), Write(1, "a"))
        policy(ops)
        assert policy(ops) is ops[0]

    def test_impossible_preference_raises(self):
        policy = SteerablePolicy()
        policy.prefer(2)
        with pytest.raises(RuntimeError):
            policy((Write(0, "a"), Write(1, "a")))

    def test_preference_ignores_reads(self):
        policy = SteerablePolicy()
        policy.prefer(0)
        with pytest.raises(RuntimeError):
            policy((Read(0),))


class TestFigure2RunnerGuards:
    def test_lasso_runner_extends_schedule(self):
        runner = build_figure2_runner(n_cycles=1, detect_lasso=True)
        result = runner.run(100_000)
        assert result.lasso is not None

    def test_plain_runner_runs_exact_script(self):
        runner = build_figure2_runner(n_cycles=2, detect_lasso=False)
        result = runner.run(10 ** 6)
        assert result.steps == len(figure2_schedule(2))
