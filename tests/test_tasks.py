"""Tests for task definitions (Section 3.1)."""


from repro.tasks import AdaptiveRenamingTask, ConsensusTask, SnapshotTask
from repro.tasks.renaming_task import bar_noy_dolev_namespace


class TestSnapshotTask:
    task = SnapshotTask()

    def test_valid_chain(self):
        assert self.task.is_valid(
            {1: {1}, 2: {1, 2}, 3: {1, 2, 3}}
        )

    def test_identical_outputs_valid(self):
        assert self.task.is_valid({1: {1, 2}, 2: {1, 2}})

    def test_missing_self_invalid(self):
        assert not self.task.is_valid({1: {2}, 2: {1, 2}})

    def test_incomparable_invalid(self):
        assert not self.task.is_valid({1: {1, 2}, 2: {2, 3}, 3: {1, 2, 3}})

    def test_non_participant_in_output_invalid(self):
        assert not self.task.is_valid({1: {1, 9}})

    def test_single_participant(self):
        assert self.task.is_valid({7: {7}})
        assert not self.task.is_valid({7: set()})

    def test_empty_assignment_valid(self):
        assert self.task.is_valid({})

    def test_explain_mentions_incomparability(self):
        message = self.task.explain_violation(
            {1: {1, 2}, 2: {2, 3}, 3: {1, 2, 3}}
        )
        assert "incomparable" in message

    def test_explain_mentions_missing_self(self):
        message = self.task.explain_violation({1: {2}, 2: {1, 2}})
        assert "own" in message

    def test_explain_valid(self):
        assert "valid" in self.task.explain_violation({1: {1}})


class TestConsensusTask:
    task = ConsensusTask()

    def test_constant_on_participant_valid(self):
        assert self.task.is_valid({1: 2, 2: 2, 3: 2})

    def test_disagreement_invalid(self):
        assert not self.task.is_valid({1: 1, 2: 2})

    def test_non_participant_value_invalid(self):
        assert not self.task.is_valid({1: 9, 2: 9})

    def test_single_processor_decides_itself(self):
        assert self.task.is_valid({4: 4})
        assert not self.task.is_valid({4: 5})

    def test_empty_assignment_valid(self):
        assert self.task.is_valid({})

    def test_explanations(self):
        assert "disagreement" in self.task.explain_violation({1: 1, 2: 2})
        assert "participating" in self.task.explain_violation({1: 9})


class TestAdaptiveRenamingTask:
    task = AdaptiveRenamingTask()

    def test_namespace_function(self):
        assert [bar_noy_dolev_namespace(n) for n in (1, 2, 3)] == [1, 3, 6]

    def test_unique_names_within_bound_valid(self):
        assert self.task.is_valid({"a": 1, "b": 3, "c": 6})

    def test_duplicate_names_invalid(self):
        assert not self.task.is_valid({"a": 2, "b": 2})

    def test_name_above_bound_invalid(self):
        # two participants: bound is 3
        assert not self.task.is_valid({"a": 1, "b": 4})

    def test_zero_or_negative_names_invalid(self):
        assert not self.task.is_valid({"a": 0})
        assert not self.task.is_valid({"a": -2})

    def test_non_integer_name_invalid(self):
        assert not self.task.is_valid({"a": "one"})

    def test_custom_namespace_function(self):
        tight = AdaptiveRenamingTask(f=lambda n: n)
        assert tight.is_valid({"a": 1, "b": 2})
        assert not tight.is_valid({"a": 1, "b": 3})

    def test_adaptivity_bound_follows_participation(self):
        # One participant: only name 1 is legal.
        assert self.task.is_valid({"solo": 1})
        assert not self.task.is_valid({"solo": 2})

    def test_explanations(self):
        assert "duplicate" in self.task.explain_violation({"a": 1, "b": 1})
        assert "outside" in self.task.explain_violation({"a": 99})
