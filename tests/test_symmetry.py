"""Symmetry reduction: canonicalization soundness and verdict conformance.

Three contracts keep the quotient construction honest:

- **canonical forms are orbit invariants** — ``canon(g . s) == canon(s)``
  for random reachable states and every group element, in both the
  object-encoded and the packed-integer canonicalizer;
- **verdict conformance** — symmetry-reduced exploration returns the
  same verdict as unreduced exploration, covers exactly the unreduced
  state count on exhaustive runs, and de-canonicalizes counterexamples
  into *concrete* executions (replayed step by step against the
  unreduced transition relation here);
- **refusal** — the incompatible combinations (liveness analysis,
  properties not declared permutation-invariant) raise instead of
  silently producing unsound reports.
"""

import os
import random
import warnings

import pytest

from repro.analysis import aggregate_symmetry_statistics
from repro.checker import Explorer, SystemSpec
from repro.checker.fast_snapshot import FastSnapshotSpec, canonical_wiring_classes
from repro.checker.parallel import effective_jobs, explore_sharded
from repro.checker.properties import SNAPSHOT_SAFETY, permutation_invariant
from repro.checker.symmetry import (
    FastCanonicalizer,
    StateCanonicalizer,
    assert_permutation_invariant,
    lift_canonical_path,
)
from repro.core import ConsensusMachine, SnapshotMachine
from repro.memory.wiring import WiringAssignment, wiring_stabilizer

#: The N=3 classes with the largest and smallest nontrivial stabilizers.
IDENTITY_CLASS = ((0, 1, 2), (0, 1, 2), (0, 1, 2))
CYCLIC_CLASS = ((0, 1, 2), (1, 2, 0), (2, 0, 1))


def _snapshot_spec(n=2, wiring=None):
    wiring = wiring or WiringAssignment.identity(n, n)
    return SystemSpec(SnapshotMachine(n), list(range(1, n + 1)), wiring)


def _random_reachable(spec, rng, steps=25):
    """A reachable :class:`GlobalState` via a seeded random walk."""
    state = spec.initial_state()
    for _ in range(steps):
        successors = list(spec.successors(state))
        if not successors:
            break
        _, state = rng.choice(successors)
    return state


def _random_reachable_fast(spec, rng, steps=25):
    """A reachable packed state via a seeded random walk."""
    state = spec.initial_state()
    for _ in range(steps):
        successors = spec.successors(state)
        if not successors:
            break
        _, state = rng.choice(successors)
    return state


class TestGroupAlgebra:
    def test_stabilizer_orders_of_known_classes(self):
        assert len(wiring_stabilizer(IDENTITY_CLASS, (1, 2, 3))) == 6
        assert len(wiring_stabilizer(CYCLIC_CLASS, (1, 2, 3))) == 3

    def test_composition_and_inverse(self):
        spec = _snapshot_spec(3)
        canonicalizer = StateCanonicalizer(spec)
        assert canonicalizer.order == 6
        for element in canonicalizer.elements:
            assert element.after(element.inverse()).is_identity
            assert element.inverse().after(element).is_identity

    def test_action_matches_composition(self):
        """``(g . h) . s == g . (h . s)`` on reachable states."""
        spec = _snapshot_spec(3)
        canonicalizer = StateCanonicalizer(spec)
        rng = random.Random(7)
        state = _random_reachable(spec, rng)
        for g in canonicalizer.elements:
            for h in canonicalizer.elements:
                composed = canonicalizer.apply(g.after(h), state)
                nested = canonicalizer.apply(g, canonicalizer.apply(h, state))
                assert composed == nested


class TestCanonicalInvariance:
    @pytest.mark.parametrize("seed", range(8))
    def test_object_canonical_is_orbit_invariant(self, seed):
        spec = _snapshot_spec(3)
        canonicalizer = StateCanonicalizer(spec)
        rng = random.Random(seed)
        state = _random_reachable(spec, rng, steps=rng.randrange(5, 40))
        representative, witness = canonicalizer.canonical(state)
        assert canonicalizer.apply(witness, state) == representative
        for element in canonicalizer.elements:
            image = canonicalizer.apply(element, state)
            assert canonicalizer.canonical(image)[0] == representative

    @pytest.mark.parametrize("wiring", [IDENTITY_CLASS, CYCLIC_CLASS])
    @pytest.mark.parametrize("seed", range(8))
    def test_packed_canonical_is_orbit_invariant(self, wiring, seed):
        spec = FastSnapshotSpec([1, 2, 3], wiring)
        canonicalizer = FastCanonicalizer(spec)
        assert not canonicalizer.trivial
        rng = random.Random(seed)
        state = _random_reachable_fast(spec, rng, steps=rng.randrange(5, 40))
        representative = canonicalizer.canonical(state)
        for apply in canonicalizer._appliers:
            assert canonicalizer.canonical(apply(state)) == representative

    def test_orbit_size_divides_group_order(self):
        spec = _snapshot_spec(3)
        canonicalizer = StateCanonicalizer(spec)
        rng = random.Random(3)
        for _ in range(10):
            state = _random_reachable(spec, rng, steps=rng.randrange(0, 30))
            assert canonicalizer.order % canonicalizer.orbit_size(state) == 0

    def test_transition_equivariance(self):
        """``s --a--> s'`` implies ``g.s --g.a--> g.s'``."""
        spec = _snapshot_spec(3)
        canonicalizer = StateCanonicalizer(spec)
        rng = random.Random(11)
        state = _random_reachable(spec, rng)
        for action, successor in spec.successors(state):
            for element in canonicalizer.elements:
                lifted = canonicalizer.apply_action(element, action)
                _, image_successor = spec.apply(
                    canonicalizer.apply(element, state), lifted.pid, lifted.op
                )
                assert image_successor == canonicalizer.apply(element, successor)


class TestVerdictConformance:
    def test_explorer_n2_exhaustive_covers_unreduced_space(self):
        spec = _snapshot_spec(2)
        base = Explorer(spec, SNAPSHOT_SAFETY).run()
        reduced = Explorer(spec, SNAPSHOT_SAFETY, symmetry=True).run()
        assert base.ok and reduced.ok and reduced.complete
        assert reduced.states < base.states
        assert reduced.covered_states == base.states
        assert reduced.symmetry_group_order == 2

    def test_explorer_fingerprint_symmetry_matches(self):
        spec = _snapshot_spec(2)
        reduced = Explorer(spec, SNAPSHOT_SAFETY, symmetry=True).run()
        lean = Explorer(
            spec, SNAPSHOT_SAFETY, symmetry=True, fingerprint=True
        ).run()
        assert lean.ok
        assert (lean.states, lean.covered_states) == (
            reduced.states, reduced.covered_states,
        )

    def test_fast_n2_exhaustive_covers_unreduced_space(self):
        spec = FastSnapshotSpec([1, 2], ((0, 1), (0, 1)))
        base = spec.explore()
        reduced = spec.explore(symmetry=True)
        lean = spec.explore(symmetry=True, fingerprint=True)
        assert base.ok and reduced.ok and lean.ok
        assert reduced.complete and reduced.states < base.states
        assert reduced.covered_states == base.states
        assert (lean.states, lean.covered_states) == (
            reduced.states, reduced.covered_states,
        )

    def test_fast_n3_budgeted_reduction_ratio(self):
        """The flagship config: identity wiring, full S_3 stabilizer."""
        spec = FastSnapshotSpec([1, 2, 3], IDENTITY_CLASS)
        reduced = spec.explore(max_states=5_000, symmetry=True)
        assert reduced.ok
        assert reduced.symmetry_group_order == 6
        assert reduced.covered_states >= 3 * reduced.states

    def test_fast_n3_all_classes_agree_with_unreduced(self):
        for wiring in canonical_wiring_classes(3, 3):
            spec = FastSnapshotSpec([1, 2, 3], wiring)
            base = spec.explore(max_states=3_000)
            reduced = spec.explore(max_states=3_000, symmetry=True)
            assert base.ok == reduced.ok
            assert reduced.covered_states >= reduced.states

    def test_consensus_duplicate_inputs_reduced(self):
        """Consensus has no rename hooks (repr tie-break), so symmetry
        bites only through the input-preserving subgroup — nontrivial
        exactly when inputs repeat."""
        wiring = WiringAssignment.identity(2, 2)
        spec = SystemSpec(ConsensusMachine(2), ["a", "a"], wiring)
        from repro.checker.properties import consensus_agreement_and_validity

        base = Explorer(
            spec, [consensus_agreement_and_validity], max_states=20_000
        ).run()
        reduced = Explorer(
            spec, [consensus_agreement_and_validity],
            max_states=20_000, symmetry=True,
        ).run()
        assert base.ok and reduced.ok
        assert reduced.symmetry_group_order == 2
        assert reduced.covered_states > reduced.states

    def test_consensus_distinct_inputs_group_is_trivial(self):
        wiring = WiringAssignment.identity(2, 2)
        spec = SystemSpec(ConsensusMachine(2), ["a", "b"], wiring)
        canonicalizer = StateCanonicalizer(spec)
        assert canonicalizer.trivial

    def test_sharded_symmetry_conforms(self):
        spec = FastSnapshotSpec([1, 2, 3], IDENTITY_CLASS)
        serial = spec.explore(max_states=4_000, symmetry=True)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            sharded = explore_sharded(
                [1, 2, 3], IDENTITY_CLASS, jobs=2,
                max_states=4_000, symmetry=True,
            )
        assert sharded.ok == serial.ok
        assert sharded.symmetry_group_order == serial.symmetry_group_order
        assert sharded.covered_states >= sharded.states

    def test_aggregate_symmetry_statistics(self):
        spec = FastSnapshotSpec([1, 2], ((0, 1), (0, 1)))
        base = spec.explore()
        reduced = spec.explore(symmetry=True)
        stats = aggregate_symmetry_statistics([reduced])
        assert stats.representatives == reduced.states
        assert stats.covered == base.states
        assert stats.reduction_ratio > 1.0
        assert stats.group_orders == [2]
        mixed = aggregate_symmetry_statistics([reduced, base])
        assert mixed.covered == 2 * base.states
        assert "reduction" in mixed.summary()


@permutation_invariant
def _no_full_view(spec, state):
    """Seeded 'violation': some processor assembled a full view."""
    for pid, local in enumerate(state.locals):
        if len(local.view) >= spec.n_processors:
            return f"processor {pid} assembled a full view"
    return None


class TestCounterexampleLifting:
    def _assert_concrete_replay(self, spec, violation):
        """The violation path must be a valid *unreduced* execution
        ending in a state that itself violates the invariant."""
        state = spec.initial_state()
        for action in violation.path:
            replayed, state = spec.apply(state, action.pid, action.op)
            assert replayed.physical == action.physical
        assert state == violation.state
        assert _no_full_view(spec, state) is not None

    @pytest.mark.parametrize("n", [2, 3])
    def test_lifted_counterexample_is_concrete_and_minimal(self, n):
        spec = _snapshot_spec(n)
        base = Explorer(spec, [_no_full_view]).run()
        reduced = Explorer(spec, [_no_full_view], symmetry=True).run()
        assert base.violation and reduced.violation
        # BFS in the quotient preserves distance-to-violation.
        assert len(reduced.violation.path) == len(base.violation.path)
        self._assert_concrete_replay(spec, reduced.violation)

    def test_fingerprint_symmetric_counterexample_replays(self):
        spec = _snapshot_spec(2)
        base = Explorer(spec, [_no_full_view]).run()
        lean = Explorer(
            spec, [_no_full_view], symmetry=True, fingerprint=True
        ).run()
        assert lean.violation
        assert len(lean.violation.path) == len(base.violation.path)
        self._assert_concrete_replay(spec, lean.violation)

    def test_lift_canonical_path_identity_witnesses_roundtrip(self):
        """With identity witnesses, lifting is plain replay."""
        spec = _snapshot_spec(2)
        canonicalizer = StateCanonicalizer(spec)
        identity = canonicalizer.elements[0]
        assert identity.is_identity
        state = spec.initial_state()
        steps = []
        for _ in range(6):
            action, state = next(iter(spec.successors(state)))
            steps.append((action, identity))
        actions, final = lift_canonical_path(canonicalizer, identity, steps)
        assert [a.pid for a in actions] == [a.pid for a, _ in steps]
        assert final == state


class TestRefusals:
    def test_symmetry_with_keep_edges_raises(self):
        with pytest.raises(ValueError, match="orbit-stable"):
            Explorer(_snapshot_spec(2), SNAPSHOT_SAFETY,
                     keep_edges=True, symmetry=True)

    def test_fast_symmetry_with_wait_freedom_raises(self):
        spec = FastSnapshotSpec([1, 2], ((0, 1), (0, 1)))
        with pytest.raises(ValueError):
            spec.explore(symmetry=True, check_wait_freedom=True)

    def test_unmarked_invariant_rejected(self):
        def bespoke_pid_property(spec, state):
            return None

        with pytest.raises(ValueError, match="bespoke_pid_property"):
            Explorer(
                _snapshot_spec(2), [bespoke_pid_property], symmetry=True
            )
        assert_permutation_invariant([_no_full_view])  # marked: no raise

    def test_builtin_properties_are_marked(self):
        assert_permutation_invariant(SNAPSHOT_SAFETY)


class TestEffectiveJobs:
    def test_within_capacity_passes_through_silently(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert effective_jobs(1) == 1

    def test_oversubscription_caps_with_warning(self):
        usable = os.cpu_count() or 1
        with pytest.warns(RuntimeWarning, match="capping"):
            assert effective_jobs(usable + 5) == usable
