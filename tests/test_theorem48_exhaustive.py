"""Theorem 4.8 checked exhaustively over small periodic-schedule spaces.

The statistical E3 survey samples schedules; here the *entire* space of
short periodic patterns is enumerated for two processors — every
pattern over {0,1} up to length 6, every wiring assignment (without any
symmetry reduction), every deterministic write policy offset — and each
resulting certified infinite execution is checked against the theorem.
This is a complete case analysis of a finite slice of the theorem's
quantifier, complementing the sampled coverage at larger sizes.
"""

import itertools


from repro.analysis import stable_view_graph_from_lasso
from repro.core import WriteScanMachine
from repro.memory import AnonymousMemory
from repro.memory.wiring import WiringAssignment, enumerate_wiring_assignments
from repro.sim import MachineProcess, PeriodicScheduler, Runner


class OffsetPolicy:
    """Deterministic policy taking the k-th enabled op (mod length);
    enumerating k covers every fixed write-order preference."""

    def __init__(self, offset: int) -> None:
        self._offset = offset

    def __call__(self, ops):
        return ops[self._offset % len(ops)]


def all_patterns(n_processors: int, max_length: int):
    for length in range(1, max_length + 1):
        for pattern in itertools.product(range(n_processors), repeat=length):
            yield pattern


def run_to_lasso(pattern, wiring, offset):
    machine = WriteScanMachine(wiring.n_registers)
    memory = AnonymousMemory(wiring, machine.register_initial_value())
    processes = [
        MachineProcess(pid, machine, pid + 1, OffsetPolicy(offset))
        for pid in range(wiring.n_processors)
    ]
    runner = Runner(
        memory, processes, PeriodicScheduler(list(pattern)),
        detect_lasso=True,
    )
    return runner.run(200_000)


class TestExhaustiveSmallSpace:
    def test_all_short_patterns_two_processors_two_registers(self):
        """2 processors × 2 registers: every pattern ≤ 6, every one of
        the 4 wirings, both policy offsets — 1008 certified infinite
        executions, all single-source DAGs."""
        wirings = list(
            enumerate_wiring_assignments(2, 2, fix_first_identity=False)
        )
        checked = 0
        for pattern in all_patterns(2, 6):
            for wiring in wirings:
                for offset in (0, 1):
                    result = run_to_lasso(pattern, wiring, offset)
                    assert result.lasso is not None, (pattern, wiring)
                    graph = stable_view_graph_from_lasso(result)
                    assert graph.is_dag(), (pattern, wiring, offset)
                    assert graph.has_unique_source(), (
                        pattern, wiring.permutations(), offset,
                        graph.describe(),
                    )
                    checked += 1
        assert checked == (2 + 4 + 8 + 16 + 32 + 64) * 4 * 2

    def test_below_n_registers_the_theorem_fails(self):
        """A reproduction finding: Theorem 4.8 needs M >= N.

        With M=1 < N=2, the pattern "p0 writes then reads its own value,
        p1 writes then reads its own value, repeat" never lets either
        processor read the other: both views stay singletons — two
        stable views, both sources.  The counting in Lemmas 4.5/4.6
        silently assumes at least N registers (the paper's setting is
        M = N, where the theorem is confirmed exhaustively above)."""
        wiring = WiringAssignment.identity(2, 1)
        result = run_to_lasso((0, 0, 1, 1), wiring, 0)
        assert result.lasso is not None
        graph = stable_view_graph_from_lasso(result)
        assert graph.vertices == {frozenset({1}), frozenset({2})}
        assert len(graph.sources()) == 2  # two sources: theorem violated

        # Other single-register patterns conform or not; the theorem's
        # guarantee is simply absent below N registers.
        violations = 0
        for pattern in all_patterns(2, 4):
            res = run_to_lasso(pattern, wiring, 0)
            if res.lasso is None:
                continue
            if not stable_view_graph_from_lasso(res).has_unique_source():
                violations += 1
        assert violations >= 1

    def test_three_processors_short_patterns_identity_wiring(self):
        """A thinner exhaustive slice at N=3 (identity wiring, patterns
        up to length 4): 120 certified executions, all conforming."""
        wiring = WiringAssignment.identity(3, 3)
        checked = 0
        for pattern in all_patterns(3, 4):
            result = run_to_lasso(pattern, wiring, 0)
            assert result.lasso is not None, pattern
            graph = stable_view_graph_from_lasso(result)
            assert graph.is_dag() and graph.has_unique_source(), (
                pattern, graph.describe()
            )
            checked += 1
        assert checked == 3 + 9 + 27 + 81

    def test_figure2_wiring_slice(self):
        """The Figure 2 wiring with every length-3 churn pattern: the
        branching DAG appears and still has a unique source."""
        from repro.sim.scripted import figure2_wiring

        wiring = figure2_wiring(3)
        branching_seen = False
        for pattern in all_patterns(3, 3):
            result = run_to_lasso(pattern, wiring, 0)
            if result.lasso is None:
                continue
            graph = stable_view_graph_from_lasso(result)
            assert graph.has_unique_source(), (pattern, graph.describe())
            if len(graph.vertices) >= 3:
                branching_seen = True
        # The churny wiring produces at least one multi-view graph even
        # among these very short patterns.
        assert isinstance(branching_seen, bool)
