"""Tests for the related-work baselines and where each one breaks."""

import random

import pytest

from repro.baselines import (
    NaiveDoubleCollectMachine,
    afek_style_snapshot_process,
    gr_snapshot_process,
    lock_free_snapshot_process,
    weak_counter_process,
)
from repro.baselines.double_collect import SWMRRecord
from repro.core.views import all_comparable
from repro.memory import AnonymousMemory, WiringAssignment
from repro.sim import (
    GeneratorProcess,
    MachineProcess,
    RandomScheduler,
    RoundRobinScheduler,
    Runner,
)
from repro.sim.machine import RandomPolicy


def run_generator_snapshot(factory, n, seed, wiring=None):
    rng = random.Random(seed)
    wiring = wiring or WiringAssignment.identity(n, n)
    memory = AnonymousMemory(wiring, None)
    processes = [
        GeneratorProcess(pid, factory(n, pid, pid + 1), pid + 1)
        for pid in range(n)
    ]
    runner = Runner(memory, processes, RandomScheduler(rng))
    return runner.run(500_000)


class TestLockFreeDoubleCollect:
    @pytest.mark.parametrize("seed", range(10))
    def test_valid_snapshot_under_random_schedules(self, seed):
        result = run_generator_snapshot(lock_free_snapshot_process, 4, seed)
        assert result.all_terminated
        assert all_comparable(result.outputs.values())
        for pid, output in result.outputs.items():
            assert (pid + 1) in output

    def test_contains_only_inputs(self):
        result = run_generator_snapshot(lock_free_snapshot_process, 3, 3)
        for output in result.outputs.values():
            assert output <= {1, 2, 3}


class TestAfekStyleSnapshot:
    @pytest.mark.parametrize("seed", range(10))
    def test_valid_snapshot_under_random_schedules(self, seed):
        result = run_generator_snapshot(afek_style_snapshot_process, 4, seed)
        assert result.all_terminated
        assert all_comparable(result.outputs.values())
        for pid, output in result.outputs.items():
            assert (pid + 1) in output

    def test_embedded_scan_published(self):
        result = run_generator_snapshot(afek_style_snapshot_process, 3, 1)
        final_writes = {}
        for event in result.trace.writes():
            final_writes[event.physical_index] = event.value
        assert any(
            isinstance(record, SWMRRecord) and record.embedded_scan
            for record in final_writes.values()
        )

    def test_borrowing_bounds_collects(self):
        """Wait-freedom proxy: the scanner performs O(N) collects even
        under heavy interference (round-robin keeps writers moving)."""
        n = 4
        memory = AnonymousMemory(WiringAssignment.identity(n, n), None)
        processes = [
            GeneratorProcess(pid, afek_style_snapshot_process(n, pid, pid + 1))
            for pid in range(n)
        ]
        runner = Runner(memory, processes, RoundRobinScheduler())
        result = runner.run(200_000)
        assert result.all_terminated
        steps = result.trace.step_counts()
        assert max(steps.values()) <= 6 * n * n  # generous O(N^2) ceiling


class TestWeakCounter:
    def test_tickets_distinct_with_named_memory(self):
        """Sequential processes get strictly increasing tickets."""
        memory = AnonymousMemory(WiringAssignment.identity(3, 8), 0)
        tickets = []
        for pid in range(3):
            process = GeneratorProcess(pid, weak_counter_process(8))
            runner_like = process
            while runner_like.status.value == "running":
                op = runner_like.next_op()
                from repro.sim.ops import Read

                if isinstance(op, Read):
                    runner_like.apply(op, memory.read(pid, op.reg))
                else:
                    memory.write(pid, op.reg, op.value)
                    runner_like.apply(op, None)
            tickets.append(process.output)
        assert tickets == [0, 1, 2]

    def test_counter_exhaustion_returns_sentinel(self):
        from repro.baselines import WEAK_COUNTER_FAILED
        from repro.sim.ops import Read

        memory = AnonymousMemory(WiringAssignment.identity(1, 2), 1)  # all bits set
        process = GeneratorProcess(0, weak_counter_process(2))
        while process.status.value == "running":
            op = process.next_op()
            if isinstance(op, Read):
                process.apply(op, memory.read(0, op.reg))
            else:
                memory.write(0, op.reg, op.value)
                process.apply(op, None)
        assert process.output == WEAK_COUNTER_FAILED

    def test_anonymous_memory_breaks_the_race(self):
        """The paper's Section 1 point: with anonymous memory there is
        no common register order, so two processors can grab the same
        ticket — the Guerraoui–Ruppert gadget is not transplantable."""
        from repro.sim.ops import Read

        # Two processors whose bit-array orders are reversed.
        wiring = WiringAssignment.from_permutations([(0, 1), (1, 0)])
        memory = AnonymousMemory(wiring, 0)
        processes = [
            GeneratorProcess(pid, weak_counter_process(2)) for pid in range(2)
        ]
        # Interleave: both read their "first" bit (different physical
        # registers, both 0), then both write.
        for process in processes:
            op = process.next_op()
            assert isinstance(op, Read)
            process.apply(op, memory.read(process.pid, op.reg))
        for process in processes:
            op = process.next_op()
            memory.write(process.pid, op.reg, op.value)
            process.apply(op, None)
        tickets = [process.output for process in processes]
        assert tickets == [0, 0], "both grabbed the same ticket"


class TestGRSnapshot:
    @pytest.mark.parametrize("seed", range(5))
    def test_valid_with_named_memory(self, seed):
        n, bits = 3, 64
        rng = random.Random(seed)
        memory = AnonymousMemory(WiringAssignment.identity(n, n + bits), 0)
        processes = [
            GeneratorProcess(pid, gr_snapshot_process(n, bits, pid, pid + 1))
            for pid in range(n)
        ]
        runner = Runner(memory, processes, RandomScheduler(rng))
        result = runner.run(500_000)
        assert result.all_terminated
        assert all_comparable(result.outputs.values())
        for pid, output in result.outputs.items():
            assert (pid + 1) in output


class TestNaiveDoubleCollectMachine:
    def test_terminates_under_benign_schedules(self):
        rng = random.Random(0)
        machine = NaiveDoubleCollectMachine(3)
        wiring = WiringAssignment.random(3, 3, rng)
        memory = AnonymousMemory(wiring, machine.register_initial_value())
        processes = [
            MachineProcess(pid, machine, pid + 1, RandomPolicy(rng))
            for pid in range(3)
        ]
        result = Runner(memory, processes, RandomScheduler(rng)).run(200_000)
        assert result.all_terminated
        for pid, output in result.outputs.items():
            assert (pid + 1) in output

    def test_cheaper_than_level_based_snapshot(self):
        """The unsound rule is cheap — that is its appeal, and why the
        E10 comparison includes it."""
        from repro.api import run_snapshot
        from repro.analysis import collect_statistics

        rng = random.Random(1)
        machine = NaiveDoubleCollectMachine(4)
        wiring = WiringAssignment.random(4, 4, rng)
        memory = AnonymousMemory(wiring, machine.register_initial_value())
        processes = [
            MachineProcess(pid, machine, pid + 1, RandomPolicy(rng))
            for pid in range(4)
        ]
        naive = Runner(memory, processes, RandomScheduler(rng)).run(200_000)
        sound = run_snapshot([1, 2, 3, 4], seed=1)
        naive_steps = collect_statistics(naive.trace).total_steps
        sound_steps = collect_statistics(sound.trace).total_steps
        assert naive_steps < sound_steps
