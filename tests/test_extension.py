"""Experiment E2 tests: the five-processor extension of Section 4.1.

``p`` and ``p'`` (same group, input 1) read constant collects forever —
``{1,2}`` and ``{1,3}`` respectively — so any "same set everywhere" or
double-collect termination rule would emit incomparable snapshots.
"""

import pytest

from repro.analysis import stable_view_graph_from_lasso
from repro.baselines import double_collect_outputs_from_trace
from repro.core.views import view
from repro.memory.trace import ReadEvent
from repro.sim.scripted import (
    EXTENSION_INPUTS,
    FIGURE2_N_REGISTERS,
    build_extension_runner,
)


@pytest.fixture(scope="module")
def extension_result():
    runner = build_extension_runner(n_cycles=12, detect_lasso=True)
    result = runner.run(10 ** 6)
    return runner, result


class TestExtensionExecution:
    def test_lasso_certified_with_all_five_live(self, extension_result):
        _, result = extension_result
        assert result.lasso is not None
        assert result.lasso.cycle_pids == (0, 1, 2, 3, 4)

    def test_p_and_p_prime_views(self, extension_result):
        runner, _ = extension_result
        assert runner.processes[3].state.view == view(1, 2)
        assert runner.processes[4].state.view == view(1, 3)

    def test_original_processors_undisturbed(self, extension_result):
        """p and p' never perturb p1, p2, p3: their stable views match
        plain Figure 2."""
        runner, _ = extension_result
        assert runner.processes[0].state.view == view(1)
        assert runner.processes[1].state.view == view(1, 2)
        assert runner.processes[2].state.view == view(1, 3)

    def test_p_reads_constant_collects(self, extension_result):
        """Every read p (pid 3) ever performs returns {1,2}."""
        runner, result = extension_result
        p_reads = [
            event.value
            for event in result.trace
            if isinstance(event, ReadEvent) and event.pid == 3
        ]
        assert p_reads, "p never read"
        assert set(p_reads) == {view(1, 2)}

    def test_p_prime_reads_constant_collects(self, extension_result):
        runner, result = extension_result
        reads = [
            event.value
            for event in result.trace
            if isinstance(event, ReadEvent) and event.pid == 4
        ]
        assert set(reads) == {view(1, 3)}

    def test_inputs_match_paper(self):
        assert EXTENSION_INPUTS == (1, 2, 3, 1, 1)


class TestTerminationRulesRefuted:
    def test_double_collect_rule_emits_incomparable_outputs(
        self, extension_result
    ):
        runner, result = extension_result
        outputs = double_collect_outputs_from_trace(
            result.trace, FIGURE2_N_REGISTERS
        )
        assert 3 in outputs and 4 in outputs
        p_out, p_prime_out = outputs[3], outputs[4]
        assert p_out == view(1, 2)
        assert p_prime_out == view(1, 3)
        assert not (p_out <= p_prime_out or p_prime_out <= p_out)

    def test_same_set_everywhere_rule_also_refuted(self, extension_result):
        """Even the weaker rule — terminate after ONE scan reading the
        same set in every register — fails: p and p' each complete many
        such scans with incomparable sets."""
        _, result = extension_result
        per_pid_scans = {3: [], 4: []}
        buffer = {3: [], 4: []}
        for event in result.trace:
            if isinstance(event, ReadEvent) and event.pid in buffer:
                buffer[event.pid].append(event.value)
                if len(buffer[event.pid]) == FIGURE2_N_REGISTERS:
                    per_pid_scans[event.pid].append(tuple(buffer[event.pid]))
                    buffer[event.pid] = []
        assert all(len(scans) >= 2 for scans in per_pid_scans.values())
        for pid, expected in ((3, view(1, 2)), (4, view(1, 3))):
            for scan in per_pid_scans[pid]:
                assert set(scan) == {expected}

    def test_continuation_yields_cross_group_violation(self):
        """Strengthening the refutation to a genuine Definition 3.4
        violation: p and p' are in the same group (input 1), so their
        incomparable double-collect outputs alone are technically
        tolerated by group solvability.  But continuing the execution
        with p2 (group 2) running solo, p2 reaches a clean double
        collect of {1,2} — and the sample (group 1 -> {1,3} from p',
        group 2 -> {1,2} from p2) is incomparable ACROSS groups: the
        double-collect rule does not even group-solve the snapshot
        task."""
        from repro.tasks import SnapshotTask, check_group_solution

        runner = build_extension_runner(n_cycles=8, detect_lasso=False)
        runner.run(10 ** 6)
        # p2 (pid 1) runs solo to a clean double collect of {1,2}, then
        # p3 (pid 2) runs solo (collecting {1,2,3}), so every
        # participating group ends up with an output — Definition 3.4
        # constrains exactly such all-terminated executions.
        for _ in range(60):
            runner.step_process(1)
        for _ in range(60):
            runner.step_process(2)
        outputs = double_collect_outputs_from_trace(
            runner.memory.trace, FIGURE2_N_REGISTERS
        )
        assert outputs.get(1) == view(1, 2), outputs
        assert outputs.get(4) == view(1, 3)
        assert outputs.get(2) == view(1, 2, 3), outputs
        inputs = {pid: EXTENSION_INPUTS[pid] for pid in outputs}
        check = check_group_solution(SnapshotTask(), inputs, outputs)
        assert not check.valid
        # The decisive sample: group 1 via p' ({1,3}) against group 2
        # via p2 ({1,2}) — incomparable across groups.
        assert "incomparable" in check.reason

    def test_stable_view_graph_still_single_source(self, extension_result):
        """Theorem 4.8 holds for the extension too: the graph gains no
        new vertices (p, p' share stable views with p2, p3)."""
        _, result = extension_result
        graph = stable_view_graph_from_lasso(result)
        assert graph.vertices == {view(1), view(1, 2), view(1, 3)}
        assert graph.has_unique_source()

    def test_register_count_invariance_note(self):
        """The paper notes extra registers would not prevent the pattern;
        our construction is register-count specific (3), so we document
        the claim by checking the pattern does not depend on processors
        outnumbering registers: 5 processors, 3 registers."""
        assert len(EXTENSION_INPUTS) == 5
        assert FIGURE2_N_REGISTERS == 3
