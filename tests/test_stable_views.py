"""Experiment E3 tests: Theorem 4.8 — stable views form a single-source DAG.

Strategy: drive the write-scan loop with *periodic* schedules and
deterministic policies; the system state is finite, so the execution
provably enters a cycle (a lasso).  The lasso certifies a genuine
infinite execution whose stable views are exact, and the theorem is
checked on its stable-view graph.  Randomized over schedules, wirings,
sizes and register counts.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.analysis import (
    StableViewGraph,
    stable_view_graph_from_lasso,
    stable_views_of_lasso,
)
from repro.analysis.stable_views import approximate_stable_view_graph
from repro.core import WriteScanMachine
from repro.core.views import view
from repro.memory import AnonymousMemory, WiringAssignment
from repro.sim import MachineProcess, PeriodicScheduler, Runner


def lasso_run(n_processors, n_registers, pattern, wiring_seed):
    rng = random.Random(wiring_seed)
    machine = WriteScanMachine(n_registers)
    wiring = WiringAssignment.random(n_processors, n_registers, rng)
    memory = AnonymousMemory(wiring, machine.register_initial_value())
    processes = [
        MachineProcess(pid, machine, pid + 1) for pid in range(n_processors)
    ]
    runner = Runner(
        memory, processes, PeriodicScheduler(pattern), detect_lasso=True
    )
    return runner.run(2_000_000)


class TestTheorem48:
    @given(
        st.integers(min_value=2, max_value=5),
        st.integers(min_value=0, max_value=2**32),
        st.data(),
    )
    @settings(max_examples=60, deadline=None)
    def test_single_source_dag_on_random_periodic_schedules(
        self, n, wiring_seed, data
    ):
        pattern = data.draw(
            st.lists(
                st.integers(min_value=0, max_value=n - 1),
                min_size=1,
                max_size=3 * n,
            )
        )
        result = lasso_run(n, n, pattern, wiring_seed)
        assert result.lasso is not None, "periodic run must reach a lasso"
        graph = stable_view_graph_from_lasso(result)
        assert graph.is_dag()
        assert graph.has_unique_source(), graph.describe()

    @given(
        st.integers(min_value=2, max_value=4),
        st.integers(min_value=0, max_value=4),
        st.integers(min_value=0, max_value=2**32),
    )
    @settings(max_examples=40, deadline=None)
    def test_theorem_holds_for_register_surplus(self, n, extra, seed):
        """The theorem holds for any M >= N.  (It genuinely FAILS for
        M < N — see test_theorem48_exhaustive.py — because the counting
        in Lemmas 4.5/4.6 needs at least as many registers as
        processors; the paper's setting is M = N.)"""
        m = n + extra
        pattern_rng = random.Random(seed)
        pattern = [pattern_rng.randrange(n) for _ in range(pattern_rng.randint(1, 12))]
        result = lasso_run(n, m, pattern, seed)
        assert result.lasso is not None
        graph = stable_view_graph_from_lasso(result)
        assert graph.is_dag()
        assert graph.has_unique_source(), graph.describe()

    def test_live_subset_only(self):
        """Processors outside the periodic pattern are not live; their
        views do not count as stable (Definition 4.2)."""
        result = lasso_run(3, 3, pattern=[0, 1], wiring_seed=5)
        assert result.lasso is not None
        assert set(result.lasso.cycle_pids) <= {0, 1}
        views = stable_views_of_lasso(result)
        assert set(views) == set(result.lasso.cycle_pids)

    def test_source_view_is_subset_of_every_stable_view(self):
        for seed in range(10):
            pattern_rng = random.Random(seed)
            pattern = [pattern_rng.randrange(4) for _ in range(8)]
            result = lasso_run(4, 4, pattern, seed)
            graph = stable_view_graph_from_lasso(result)
            (source,) = graph.sources()
            assert all(source <= vertex for vertex in graph.vertices)


class TestGraphApi:
    def build(self, views_by_pid):
        vertices = frozenset(views_by_pid.values())
        edges = frozenset(
            (a, b) for a in vertices for b in vertices if a < b
        )
        return StableViewGraph(vertices, edges, views_by_pid)

    def test_chain_has_unique_source(self):
        graph = self.build({0: view(1), 1: view(1, 2), 2: view(1, 2, 3)})
        assert graph.is_dag() and graph.has_unique_source()

    def test_two_sources_detected(self):
        graph = self.build({0: view(1), 1: view(2)})
        assert graph.is_dag()
        assert not graph.has_unique_source()
        assert len(graph.sources()) == 2

    def test_single_vertex(self):
        graph = self.build({0: view(1, 2)})
        assert graph.sources() == [view(1, 2)]
        assert graph.has_unique_source()

    def test_networkx_roundtrip(self):
        graph = self.build({0: view(1), 1: view(1, 2)})
        nx_graph = graph.to_networkx()
        import networkx as nx

        assert nx.is_directed_acyclic_graph(nx_graph)


class TestApproximateGraph:
    def test_stable_tail_builds_graph(self):
        samples = [{0: view(1), 1: view(1, 2)}] * 10
        graph = approximate_stable_view_graph(samples)
        assert graph is not None
        assert graph.has_unique_source()

    def test_unstable_tail_rejected(self):
        samples = [{0: view(1)}] * 5 + [{0: view(1, 2)}] * 2 + [{0: view(1)}]
        assert approximate_stable_view_graph(samples) is None

    def test_empty_samples(self):
        assert approximate_stable_view_graph([]) is None
