"""Model checking renaming and consensus (the remaining Figure 4/5 specs).

The generic checker works over any algorithm machine, so the renaming
and consensus algorithms get the same treatment as the snapshot:

- renaming, N=2: exhaustive over all wirings and over group structures
  (distinct inputs and a shared group), with the name-validity invariant
  checked in every reachable state, plus wait-freedom;
- consensus, N=2: the state space is infinite (timestamps grow), so the
  sweep is budgeted — an honest falsification attempt for the
  agreement/validity invariant over the first ~100k states.
"""

import pytest

from repro.checker import Explorer, SystemSpec
from repro.checker.liveness import check_wait_freedom
from repro.checker.properties import (
    consensus_agreement_and_validity,
    renaming_names_valid,
)
from repro.core import ConsensusMachine, RenamingMachine
from repro.memory.wiring import WiringAssignment, enumerate_wiring_assignments


class TestRenamingModelCheckN2:
    @pytest.mark.parametrize(
        "wiring", list(enumerate_wiring_assignments(2, 2)),
        ids=lambda w: str(w.permutations()),
    )
    def test_distinct_groups_exhaustive(self, wiring):
        spec = SystemSpec(RenamingMachine(2), ["a", "b"], wiring)
        result = Explorer(
            spec, [renaming_names_valid], keep_edges=True
        ).run()
        assert result.complete and result.ok, (
            result.violation and result.violation.message
        )
        assert check_wait_freedom(spec, result) == []

    @pytest.mark.parametrize(
        "wiring", list(enumerate_wiring_assignments(2, 2)),
        ids=lambda w: str(w.permutations()),
    )
    def test_shared_group_exhaustive(self, wiring):
        """Both processors in one group: names may be shared, must stay
        within the 1-group bound when only that group participates."""
        spec = SystemSpec(RenamingMachine(2), ["g", "g"], wiring)
        result = Explorer(spec, [renaming_names_valid], keep_edges=True).run()
        assert result.complete and result.ok
        assert check_wait_freedom(spec, result) == []

    def test_final_states_have_valid_names(self):
        spec = SystemSpec(
            RenamingMachine(2), ["a", "b"], WiringAssignment.identity(2, 2)
        )
        result = Explorer(
            spec, [renaming_names_valid], collect_final_states=True
        ).run()
        assert result.final_states
        for state in result.final_states:
            outputs = spec.outputs(state)
            assert len(outputs) == 2
            assert outputs[0] != outputs[1]
            assert set(outputs.values()) <= {1, 2, 3}


class TestConsensusModelCheckN2:
    @pytest.mark.parametrize(
        "wiring", list(enumerate_wiring_assignments(2, 2)),
        ids=lambda w: str(w.permutations()),
    )
    def test_budgeted_safety_sweep(self, wiring):
        spec = SystemSpec(ConsensusMachine(2), ["x", "y"], wiring)
        result = Explorer(
            spec, [consensus_agreement_and_validity], max_states=100_000
        ).run()
        assert result.ok, result.violation and result.violation.message
        # Infinite state space: the budget must have been the stopper.
        assert not result.complete

    def test_unanimous_inputs_budgeted(self):
        spec = SystemSpec(
            ConsensusMachine(2), ["v", "v"], WiringAssignment.identity(2, 2)
        )
        result = Explorer(
            spec, [consensus_agreement_and_validity], max_states=60_000
        ).run()
        assert result.ok

    def test_broken_rule_is_caught(self):
        """Regression guard for the decision-rule disambiguation: a
        machine that decides vacuously at timestamp 0 violates agreement
        within a small bounded sweep — the checker must find it."""
        from repro.core.consensus import (
            ConsensusMachine as GoodMachine,
            ConsensusState,
            max_timestamps,
        )

        class VacuousDecisionMachine(GoodMachine):
            """The unsound reading: decide whenever no rival appears."""

            def apply(self, state, op, result):
                inner = self.snapshot_machine.apply(state.inner, op, result)
                if not self.snapshot_machine.is_ready(inner):
                    return ConsensusState(
                        inner=inner,
                        preference=state.preference,
                        timestamp=state.timestamp,
                    )
                snapshot = self.snapshot_machine.output(inner)
                best = max_timestamps(snapshot)
                top = max(best.values())
                leaders = sorted(
                    (v for v, ts in best.items() if ts == top), key=repr
                )
                leader = leaders[0]
                others = [ts for v, ts in best.items() if v != leader]
                if len(leaders) == 1 and (not others or top >= max(others) + 2):
                    return ConsensusState(
                        inner=inner, preference=leader,
                        timestamp=state.timestamp, decision=leader,
                    )
                reinvoked = self.snapshot_machine.invoke(
                    inner, _tv(leader, top + 1)
                )
                return ConsensusState(
                    inner=reinvoked, preference=leader, timestamp=top + 1
                )

        from repro.core.consensus import TimestampedValue as _tv

        spec = SystemSpec(
            VacuousDecisionMachine(2), ["x", "y"],
            WiringAssignment.identity(2, 2),
        )
        result = Explorer(
            spec, [consensus_agreement_and_validity], max_states=200_000
        ).run()
        assert result.violation is not None
        assert "disagreement" in result.violation.message
        # The counterexample path must replay to the violation.
        state = spec.initial_state()
        for action in result.violation.path:
            _, state = spec.apply(state, action.pid, action.op)
        outputs = spec.outputs(state)
        assert len(set(outputs.values())) > 1
