"""anonlint: rules, suppressions, baseline, reporters, CLI, acceptance.

The fixture modules under ``tests/lint_fixtures/`` carry deliberately
seeded violations (one family per file) plus a suppressed variant of
every rule and a clean machine module; the tests here pin down that
each rule fires where it must, stays silent where it must, and that
the committed repository baseline describes exactly the accepted debt.
"""

import json
import subprocess
from pathlib import Path

import pytest

from repro.cli import main
from repro.lint import (
    Baseline,
    BaselineEntry,
    LintEngine,
    derive_role,
    load_baseline,
    match_baseline,
    parse_suppressions,
    render_json,
    render_text,
    write_baseline,
)

REPO_ROOT = Path(__file__).resolve().parents[1]
FIXTURES = Path(__file__).resolve().parent / "lint_fixtures"


def _lint(name):
    return LintEngine().lint_file(FIXTURES / name)


def _active(name):
    return [f for f in _lint(name) if not f.suppressed]


# ---------------------------------------------------------------------------
# Roles and suppression comments
# ---------------------------------------------------------------------------


class TestRolesAndSuppressions:
    def test_path_derives_machine_role(self):
        assert derive_role("src/repro/core/snapshot.py", "") == "machine"
        assert derive_role("src/repro/baselines/afek.py", "") == "machine"

    def test_path_derives_harness_role(self):
        assert derive_role("src/repro/checker/system.py", "") == "harness"
        assert derive_role("src/repro/cli.py", "") == "harness"

    def test_marker_overrides_path(self):
        source = "# anonlint: role=harness\n"
        assert derive_role("src/repro/core/snapshot.py", source) == "harness"
        marked = "# anonlint: role=machine\n"
        assert derive_role("tests/fixture.py", marked) == "machine"

    def test_suppression_same_line_and_next_line(self):
        table = parse_suppressions(
            [
                "x = 1  # anonlint: disable=ANON001",
                "# anonlint: disable-next-line=WF001, WIRE002",
                "y = 2",
            ]
        )
        assert table[1] == {"ANON001"}
        assert table[3] == {"WF001", "WIRE002"}

    def test_role_argument_beats_marker(self):
        source = (FIXTURES / "anon_violation.py").read_text(encoding="utf-8")
        findings = LintEngine().lint_source(source, role="harness")
        assert [f for f in findings if f.rule == "ANON002"] == []

    def test_versioned_rule_tokens_parse(self):
        table = parse_suppressions(["x = f()  # anonlint: disable=INVAR002v2"])
        assert table[1] == {"INVAR002v2"}


# ---------------------------------------------------------------------------
# ANON: anonymity (taint-tracked)
# ---------------------------------------------------------------------------


class TestAnonRule:
    def test_each_seeded_violation_fires(self):
        findings = _active("anon_violation.py")
        assert all(f.rule == "ANON002" for f in findings)
        by_symbol = {f.symbol: f.message for f in findings}
        assert set(by_symbol) == {
            "branch_on_identity",
            "compare_identities",
            "write_by_identity",
            "index_by_identity",
            "alias_branch_on_identity",
            "derived_subscript",
        }
        assert "branches on processor identity" in by_symbol["branch_on_identity"]
        assert "compares processor identity" in by_symbol["compare_identities"]
        assert "register index" in by_symbol["write_by_identity"]
        assert "outside the wiring" in by_symbol["index_by_identity"]

    def test_taint_follows_aliases_and_arithmetic(self):
        # The shapes the old name-heuristic could not follow: the
        # identity laundered through an alias and through arithmetic.
        by_symbol = {f.symbol: f.message for f in _active("anon_violation.py")}
        assert "'who'" in by_symbol["alias_branch_on_identity"]
        assert "'slot'" in by_symbol["derived_subscript"]

    def test_looked_up_data_is_not_identity(self):
        # d.get(pid) returns *data selected by* an identity, not the
        # identity itself; comparing it must be clean (the precision
        # win over ANON001's name matching).
        source = (
            "# anonlint: role=machine\n"
            "def compare_lookup(pid, table, collect):\n"
            "    return table.get(pid) == collect\n"
        )
        assert LintEngine().lint_source(source) == []

    def test_fstring_diagnostics_are_exempt(self):
        source = (
            "# anonlint: role=machine\n"
            "def describe(pid):\n"
            "    return f'processor {pid} state'\n"
        )
        assert LintEngine().lint_source(source) == []

    def test_sanctioned_patterns_are_clean(self):
        assert _lint("clean_machine.py") == []


# ---------------------------------------------------------------------------
# WIRE: wiring discipline
# ---------------------------------------------------------------------------


class TestWireRules:
    def test_subscript_and_api_access_fire(self):
        findings = _active("wire_violation.py")
        rules = sorted(f.rule for f in findings)
        assert rules == ["WIRE001", "WIRE001", "WIRE002"]
        symbols = {f.symbol for f in findings}
        assert symbols == {
            "direct_register_subscript",
            "direct_register_store",
            "direct_memory_api",
        }

    def test_harness_role_is_exempt(self):
        source = (FIXTURES / "wire_violation.py").read_text(encoding="utf-8")
        findings = LintEngine().lint_source(source, role="harness")
        assert findings == []


# ---------------------------------------------------------------------------
# INVAR: permutation invariance
# ---------------------------------------------------------------------------


class TestInvarRules:
    def test_unmarked_exported_property_fires(self):
        findings = [
            f for f in _active("invar_violation.py") if f.rule == "INVAR001"
        ]
        assert [f.symbol for f in findings] == ["unmarked_property"]
        assert "FIXTURE_SAFETY" in findings[0].message

    def test_equivariance_violations_fire(self):
        findings = [
            f for f in _active("invar_violation.py") if f.rule == "INVAR002v2"
        ]
        by_symbol = {f.symbol: f.message for f in findings}
        assert set(by_symbol) == {
            "repr_tie_break",
            "direct_repr_selection",
            "orders_identities",
            "positional_asymmetry",
            "aliased_repr_selection",
        }
        assert "key=repr" in by_symbol["repr_tie_break"]
        assert "key=repr" in by_symbol["direct_repr_selection"]
        assert "ordering comparison on processor identity" in (
            by_symbol["orders_identities"]
        )
        assert "enumerate index" in by_symbol["positional_asymmetry"]

    def test_taint_follows_the_alias(self):
        # `chosen = ordered` hides the repr-sorted list behind a second
        # name; the syntactic v1 rule lost it there.
        findings = [
            f
            for f in _active("invar_violation.py")
            if f.symbol == "aliased_repr_selection"
        ]
        assert len(findings) == 1
        assert "'chosen'" in findings[0].message

    def test_resorting_launders_repr_order(self):
        # A later key-less sort re-establishes an input-respecting
        # order, so selection from it is equivariant again.
        source = (
            "def permutation_invariant(fn):\n"
            "    fn.permutation_invariant = True\n"
            "    return fn\n"
            "@permutation_invariant\n"
            "def resorted(spec, state):\n"
            "    ordered = sorted(state.candidates, key=repr)\n"
            "    return sorted(ordered)[0]\n"
        )
        assert LintEngine().lint_source(source) == []

    def test_message_only_sort_is_exempt(self):
        symbols = {f.symbol for f in _active("invar_violation.py")}
        assert "message_only_sort" not in symbols

    def test_shipped_properties_are_clean(self):
        findings = LintEngine().lint_file(
            REPO_ROOT / "src" / "repro" / "checker" / "properties.py",
            root=REPO_ROOT,
        )
        assert findings == []


# ---------------------------------------------------------------------------
# POR: visibility-footprint honesty
# ---------------------------------------------------------------------------


class TestPorRule:
    def test_narrow_footprints_fire(self):
        findings = [
            f for f in _active("por_violation.py") if f.rule == "POR001"
        ]
        by_symbol = {f.symbol: f.message for f in findings}
        assert set(by_symbol) == {
            "reads_registers_undeclared",
            "reads_register_outside_footprint",
            "reads_locals_undeclared",
        }
        assert ".registers beyond its declared footprint" in (
            by_symbol["reads_registers_undeclared"]
        )
        assert ".locals" in by_symbol["reads_locals_undeclared"]
        assert "locals=True" in by_symbol["reads_locals_undeclared"]

    def test_covering_declarations_are_exempt(self):
        symbols = {
            f.symbol
            for f in _active("por_violation.py")
            if f.rule == "POR001"
        }
        assert "constant_subscripts_in_footprint" not in symbols
        assert "all_registers_declared" not in symbols
        assert "locals_declared" not in symbols

    def test_suppression_applies(self):
        suppressed = {
            f.symbol
            for f in LintEngine().lint_file(FIXTURES / "por_violation.py")
            if f.rule == "POR001" and f.suppressed
        }
        assert suppressed == {"suppressed_narrow_footprint"}

    def test_shipped_footprints_are_clean(self):
        findings = LintEngine().lint_file(
            REPO_ROOT / "src" / "repro" / "checker" / "properties.py",
            root=REPO_ROOT,
        )
        assert [f for f in findings if f.rule == "POR001"] == []


# ---------------------------------------------------------------------------
# WF: wait-freedom hygiene
# ---------------------------------------------------------------------------


class TestWfRule:
    def test_unguarded_loops_fire(self):
        findings = _active("wf_violation.py")
        assert all(f.rule == "WF001" for f in findings)
        by_symbol = {f.symbol: f.message for f in findings}
        assert set(by_symbol) == {"no_exit_loop", "unguarded_double_collect"}
        assert "no exit" in by_symbol["no_exit_loop"]
        assert "progress guard" in by_symbol["unguarded_double_collect"]

    def test_level_guarded_loop_is_exempt(self):
        symbols = {f.symbol for f in _active("wf_violation.py")}
        assert "level_guarded_loop" not in symbols


class TestLoopVariantRule:
    def test_each_seeded_violation_fires(self):
        findings = _active("wf2_violation.py")
        assert all(f.rule == "WF002" for f in findings)
        by_symbol = {f.symbol: f.message for f in findings}
        assert set(by_symbol) == {
            "no_variant_loop",
            "wrong_direction",
            "undeclared_bound",
        }
        assert "no derivable variant" in by_symbol["no_variant_loop"]
        assert "never advances" in by_symbol["wrong_direction"]
        assert "declared wait-freedom budget" in by_symbol["undeclared_bound"]

    def test_derivable_bounds_are_exempt(self):
        symbols = {f.symbol for f in _active("wf2_violation.py")}
        assert "constant_bound_loop" not in symbols
        assert "len_bound_loop" not in symbols
        assert "declared_budget_loop" not in symbols

    def test_class_level_budget_declaration(self):
        source = (
            "# anonlint: role=machine\n"
            "class Machine:\n"
            "    wait_free_bounds = ('level_target',)\n"
            "    def run(self, collect, level_target):\n"
            "        level = 0\n"
            "        while level < level_target:\n"
            "            collect()\n"
            "            level += 1\n"
            "        return level\n"
        )
        assert LintEngine().lint_source(source) == []

    def test_shipped_machines_are_clean(self):
        for name in ("snapshot.py", "write_scan.py", "long_lived.py"):
            findings = LintEngine().lint_file(
                REPO_ROOT / "src" / "repro" / "core" / name, root=REPO_ROOT
            )
            assert [f for f in findings if f.rule == "WF002"] == []


# ---------------------------------------------------------------------------
# POR002: footprint inference
# ---------------------------------------------------------------------------


class TestFootprintInference:
    def test_lying_and_undeclared_machines_fire(self):
        findings = [
            f for f in _active("footprint_machine.py") if f.rule == "POR002"
        ]
        by_symbol = {f.symbol: f.message for f in findings}
        assert set(by_symbol) == {"LyingMachine", "UndeclaredMachine"}
        assert "too-narrow declaration" in by_symbol["LyingMachine"]
        assert "declares no por_footprint" in by_symbol["UndeclaredMachine"]

    def test_honest_and_delegating_machines_are_exempt(self):
        symbols = {
            f.symbol
            for f in _active("footprint_machine.py")
            if f.rule == "POR002"
        }
        assert "HonestMachine" not in symbols
        assert "DelegatingMachine" not in symbols

    def test_shipped_machines_reconcile(self):
        for relative in (
            ("core", "snapshot.py"),
            ("core", "write_scan.py"),
            ("core", "long_lived.py"),
            ("core", "consensus.py"),
            ("core", "renaming.py"),
            ("baselines", "naive_fully_anonymous.py"),
        ):
            findings = LintEngine().lint_file(
                REPO_ROOT.joinpath("src", "repro", *relative), root=REPO_ROOT
            )
            assert [f for f in findings if f.rule == "POR002"] == [], relative

    def test_shipped_property_footprints_reconcile(self):
        findings = LintEngine().lint_file(
            REPO_ROOT / "src" / "repro" / "checker" / "properties.py",
            root=REPO_ROOT,
        )
        assert [f for f in findings if f.rule == "POR002"] == []

    def test_narrow_property_footprint_fires(self):
        findings = [
            f for f in _active("por_violation.py") if f.rule == "POR002"
        ]
        assert "reads_registers_undeclared" in {f.symbol for f in findings}


# ---------------------------------------------------------------------------
# Suppressions silence every rule
# ---------------------------------------------------------------------------


class TestSuppressedFixture:
    def test_all_seeded_violations_are_suppressed(self):
        findings = _lint("all_suppressed.py")
        assert [f for f in findings if not f.suppressed] == []
        suppressed_rules = {f.rule for f in findings if f.suppressed}
        assert suppressed_rules == {
            "ANON002",
            "WIRE001",
            "WIRE002",
            "INVAR001",
            "INVAR002v2",
            "WF001",
            "WF002",
        }

    def test_suppressed_findings_are_still_reported(self):
        findings = _lint("all_suppressed.py")
        assert all(f.suppressed for f in findings)
        assert any("[suppressed]" in f.format() for f in findings)


# ---------------------------------------------------------------------------
# Baseline: keys, carry-over, staleness, provenance
# ---------------------------------------------------------------------------


class TestBaseline:
    def test_roundtrip_and_justification_carry(self, tmp_path):
        findings = _active("wf_violation.py")
        path = tmp_path / "baseline.json"
        write_baseline(path, findings, sha="abc1234")
        loaded = load_baseline(path)
        assert loaded.git_sha == "abc1234"
        assert {e.key for e in loaded.entries} == {f.key for f in findings}

        # Hand-edit a justification, regenerate: the why must survive.
        loaded.entries[0].justification = "deliberately lock-free"
        kept_key = loaded.entries[0].key
        write_baseline(path, findings, previous=loaded, sha="def5678")
        reloaded = load_baseline(path)
        by_key = {e.key: e.justification for e in reloaded.entries}
        assert by_key[kept_key] == "deliberately lock-free"

    def test_match_partitions_new_baselined_stale(self):
        findings = _active("wf_violation.py")
        baseline = Baseline(
            entries=[
                BaselineEntry(*findings[0].key),
                BaselineEntry("WF001", "gone.py", "old", "stale message"),
            ]
        )
        match = match_baseline(findings, baseline)
        assert [f.key for f in match.baselined] == [findings[0].key]
        assert [f.key for f in match.new] == [f.key for f in findings[1:]]
        assert [e.path for e in match.stale] == ["gone.py"]

    def test_match_is_multiset(self):
        findings = _active("wf_violation.py")
        duplicated = findings[:1] * 2
        baseline = Baseline(entries=[BaselineEntry(*findings[0].key)])
        match = match_baseline(duplicated, baseline)
        assert len(match.baselined) == 1 and len(match.new) == 1

    def test_missing_file_is_empty_baseline(self, tmp_path):
        baseline = load_baseline(tmp_path / "absent.json")
        assert baseline.entries == [] and baseline.git_sha is None

    def test_write_stamps_repo_git_sha(self, tmp_path):
        path = tmp_path / "baseline.json"
        write_baseline(path, [])
        # tmp_path is outside any work tree unless git walks up; compare
        # against what git itself says from that directory.
        probe = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, cwd=str(tmp_path),
        )
        expected = probe.stdout.strip() if probe.returncode == 0 else None
        assert load_baseline(path).git_sha == (expected or None)

    def test_deleted_file_entry_goes_stale(self, tmp_path):
        # Baseline a finding, delete its file: the entry must surface as
        # stale (and only as stale — not matched, not new).
        source = tmp_path / "core" / "algo.py"
        source.parent.mkdir()
        source.write_text(
            "def scan(pid, table):\n    return table[pid]\n",
            encoding="utf-8",
        )
        findings = LintEngine().lint_file(source, root=tmp_path)
        assert len(findings) == 1
        baseline = Baseline(entries=[BaselineEntry(*findings[0].key)])
        source.unlink()
        report = LintEngine().lint_paths([tmp_path], root=tmp_path)
        match = match_baseline(report.active, baseline)
        assert match.baselined == [] and match.new == []
        assert [e.key for e in match.stale] == [findings[0].key]

    def test_empty_justification_is_tracked_as_unjustified(self):
        findings = _active("wf_violation.py")
        baseline = Baseline(
            entries=[
                BaselineEntry(*findings[0].key, justification="   "),
                BaselineEntry(*findings[1].key, justification="lock-free"),
            ]
        )
        match = match_baseline(findings, baseline)
        assert len(match.baselined) == 2
        assert [e.key for e in match.unjustified] == [findings[0].key]


# ---------------------------------------------------------------------------
# Reporters
# ---------------------------------------------------------------------------


class TestReporters:
    def test_text_report_counts(self):
        report = LintEngine().lint_paths([FIXTURES / "wf_violation.py"])
        match = match_baseline(report.active, Baseline())
        text = render_text(report, match)
        assert "2 new finding(s)" in text
        assert "anonlint: 1 files" in text

    def test_json_report_statuses(self):
        report = LintEngine().lint_paths([FIXTURES / "all_suppressed.py"])
        match = match_baseline(report.active, Baseline())
        payload = json.loads(render_json(report, match))
        statuses = {item["status"] for item in payload["findings"]}
        assert statuses == {"suppressed"}
        assert payload["schema"] == "anonlint-report/1"

    def test_sha_drift_note_renders_only_when_stale_and_drifted(self):
        report = LintEngine().lint_paths([FIXTURES / "wf_violation.py"])
        stale = Baseline(
            entries=[BaselineEntry("WF001", "gone.py", "old", "msg")]
        )
        match = match_baseline(report.active, stale)
        drifted = render_text(
            report, match, baseline_sha="aaa1111", current_sha="bbb2222"
        )
        assert "baseline was written at aaa1111" in drifted
        assert "--write-baseline refresh" in drifted
        # Same SHA: no drift note even though entries are stale.
        same = render_text(
            report, match, baseline_sha="aaa1111", current_sha="aaa1111"
        )
        assert "baseline was written at" not in same
        # Drifted SHA but nothing stale: no note either.
        clean_match = match_baseline(report.active, Baseline())
        clean = render_text(
            report, clean_match, baseline_sha="aaa1111", current_sha="bbb2222"
        )
        assert "baseline was written at" not in clean

    def test_unjustified_entries_are_surfaced(self):
        report = LintEngine().lint_paths([FIXTURES / "wf_violation.py"])
        baseline = Baseline(
            entries=[BaselineEntry(*f.key) for f in report.active]
        )
        match = match_baseline(report.active, baseline)
        text = render_text(report, match)
        assert "unjustified baseline entry" in text
        assert "document why it is accepted" in text
        payload = json.loads(render_json(report, match))
        assert payload["unjustified_baseline_entries"]

    def test_footprint_kind_renders_steps_not_orbit(self):
        from repro.lint.dynamic import DynamicVerification

        report = LintEngine().lint_paths([FIXTURES / "wf_violation.py"])
        match = match_baseline(report.active, Baseline())
        dynamic = [
            DynamicVerification(
                property_name="p_levels",
                system="snapshot n=2",
                states_checked=10,
                elements=24,
                kind="footprint",
            ),
            DynamicVerification(
                property_name="p_levels",
                system="snapshot n=2",
                states_checked=10,
                elements=4,
            ),
        ]
        text = render_text(report, match, dynamic=dynamic)
        assert "(10 states, 24 steps)" in text
        assert "(10 states x 4 orbit elements)" in text


# ---------------------------------------------------------------------------
# CLI: exit codes and the baseline workflow end to end
# ---------------------------------------------------------------------------


@pytest.fixture
def lint_project(tmp_path, monkeypatch):
    """A throwaway project with one seeded machine violation."""
    package = tmp_path / "pkg" / "core"
    package.mkdir(parents=True)
    (package / "algo.py").write_text(
        "def scan(pid, table):\n    return table[pid]\n", encoding="utf-8"
    )
    monkeypatch.chdir(tmp_path)
    return tmp_path


class TestCli:
    def test_new_finding_exits_nonzero(self, lint_project, capsys):
        assert main(["lint", "pkg"]) == 1
        out = capsys.readouterr().out
        assert "ANON002" in out and "1 new finding(s)" in out

    def test_baselined_finding_exits_zero(self, lint_project, capsys):
        assert main(["lint", "pkg", "--write-baseline"]) == 0
        assert "wrote 1 baseline entr(ies)" in capsys.readouterr().out
        assert main(["lint", "pkg"]) == 0
        out = capsys.readouterr().out
        assert "[baselined]" in out and "0 new finding(s)" in out

    def test_stale_entry_reported_but_passes(self, lint_project, capsys):
        assert main(["lint", "pkg", "--write-baseline"]) == 0
        algo = lint_project / "pkg" / "core" / "algo.py"
        algo.write_text(
            "def scan(wiring, pid, table):\n"
            "    return table[wiring[pid]]\n",
            encoding="utf-8",
        )
        capsys.readouterr()
        assert main(["lint", "pkg"]) == 0
        out = capsys.readouterr().out
        assert "1 stale baseline entr(ies)" in out

    def test_json_format(self, lint_project, capsys):
        assert main(["lint", "pkg", "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["findings"][0]["rule"] == "ANON002"

    def test_only_restricts_rules(self, lint_project, capsys):
        # The seeded ANON002 finding is invisible to a WF-only run.
        assert main(["lint", "pkg", "--only", "WF001,WF002"]) == 0
        out = capsys.readouterr().out
        assert "0 new finding(s)" in out
        assert main(["lint", "pkg", "--only", "ANON002"]) == 1
        assert "ANON002" in capsys.readouterr().out

    def test_only_filters_baseline_to_selected_rules(
        self, lint_project, capsys
    ):
        # A baseline entry for an unselected rule must not read as stale.
        assert main(["lint", "pkg", "--write-baseline"]) == 0
        capsys.readouterr()
        assert main(["lint", "pkg", "--only", "WF001"]) == 0
        out = capsys.readouterr().out
        assert "0 stale baseline entr(ies)" in out

    def test_only_unknown_rule_exits_two(self, lint_project, capsys):
        assert main(["lint", "pkg", "--only", "NOPE999"]) == 2
        assert "unknown rule id(s): NOPE999" in capsys.readouterr().out

    def test_explain_prints_rule_documentation(self, lint_project, capsys):
        assert main(["lint", "pkg", "--explain", "POR002"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("POR002:")
        assert "por_footprint" in out

    def test_explain_unknown_rule_exits_two(self, lint_project, capsys):
        assert main(["lint", "pkg", "--explain", "NOPE999"]) == 2
        assert "NOPE999" in capsys.readouterr().out

    def test_infer_footprints_reports_declared_vs_inferred(self, capsys):
        target = str(REPO_ROOT / "src" / "repro" / "core")
        assert main(["lint", target, "--infer-footprints"]) == 0
        out = capsys.readouterr().out
        assert "SnapshotMachine" in out
        assert "declared" in out and "inferred" in out


# ---------------------------------------------------------------------------
# Acceptance: the committed baseline describes the repository exactly
# ---------------------------------------------------------------------------


class TestRepositoryAcceptance:
    def test_src_is_clean_modulo_committed_baseline(self):
        report = LintEngine().lint_paths([REPO_ROOT / "src"], root=REPO_ROOT)
        baseline = load_baseline(REPO_ROOT / ".anonlint-baseline.json")
        match = match_baseline(report.active, baseline)
        assert match.new == [], [f.format() for f in match.new]
        assert match.stale == [], [e.key for e in match.stale]

    def test_the_one_baselined_finding_is_the_consensus_tie_break(self):
        baseline = load_baseline(REPO_ROOT / ".anonlint-baseline.json")
        assert len(baseline.entries) == 1
        entry = baseline.entries[0]
        assert entry.rule == "INVAR002v2"
        assert entry.path == "src/repro/core/consensus.py"
        assert entry.symbol == "decide_or_adopt"
        assert entry.justification  # accepted debt must say why

    def test_every_suppression_is_in_the_baselines_package(self):
        report = LintEngine().lint_paths([REPO_ROOT / "src"], root=REPO_ROOT)
        suppressed = report.suppressed
        assert len(suppressed) == 7
        assert all(f.path.startswith("src/repro/baselines/") for f in suppressed)
        assert {f.rule for f in suppressed} == {"ANON002", "WF001"}
