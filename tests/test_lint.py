"""anonlint: rules, suppressions, baseline, reporters, CLI, acceptance.

The fixture modules under ``tests/lint_fixtures/`` carry deliberately
seeded violations (one family per file) plus a suppressed variant of
every rule and a clean machine module; the tests here pin down that
each rule fires where it must, stays silent where it must, and that
the committed repository baseline describes exactly the accepted debt.
"""

import json
import subprocess
from pathlib import Path

import pytest

from repro.cli import main
from repro.lint import (
    Baseline,
    BaselineEntry,
    LintEngine,
    derive_role,
    load_baseline,
    match_baseline,
    parse_suppressions,
    render_json,
    render_text,
    write_baseline,
)

REPO_ROOT = Path(__file__).resolve().parents[1]
FIXTURES = Path(__file__).resolve().parent / "lint_fixtures"


def _lint(name):
    return LintEngine().lint_file(FIXTURES / name)


def _active(name):
    return [f for f in _lint(name) if not f.suppressed]


# ---------------------------------------------------------------------------
# Roles and suppression comments
# ---------------------------------------------------------------------------


class TestRolesAndSuppressions:
    def test_path_derives_machine_role(self):
        assert derive_role("src/repro/core/snapshot.py", "") == "machine"
        assert derive_role("src/repro/baselines/afek.py", "") == "machine"

    def test_path_derives_harness_role(self):
        assert derive_role("src/repro/checker/system.py", "") == "harness"
        assert derive_role("src/repro/cli.py", "") == "harness"

    def test_marker_overrides_path(self):
        source = "# anonlint: role=harness\n"
        assert derive_role("src/repro/core/snapshot.py", source) == "harness"
        marked = "# anonlint: role=machine\n"
        assert derive_role("tests/fixture.py", marked) == "machine"

    def test_suppression_same_line_and_next_line(self):
        table = parse_suppressions(
            [
                "x = 1  # anonlint: disable=ANON001",
                "# anonlint: disable-next-line=WF001, WIRE002",
                "y = 2",
            ]
        )
        assert table[1] == {"ANON001"}
        assert table[3] == {"WF001", "WIRE002"}

    def test_role_argument_beats_marker(self):
        source = (FIXTURES / "anon_violation.py").read_text(encoding="utf-8")
        findings = LintEngine().lint_source(source, role="harness")
        assert [f for f in findings if f.rule == "ANON001"] == []


# ---------------------------------------------------------------------------
# ANON: anonymity
# ---------------------------------------------------------------------------


class TestAnonRule:
    def test_each_seeded_violation_fires(self):
        findings = _active("anon_violation.py")
        assert all(f.rule == "ANON001" for f in findings)
        by_symbol = {f.symbol: f.message for f in findings}
        assert set(by_symbol) == {
            "branch_on_identity",
            "compare_identities",
            "write_by_identity",
            "index_by_identity",
        }
        assert "branches on processor identity" in by_symbol["branch_on_identity"]
        assert "compares processor identity" in by_symbol["compare_identities"]
        assert "register index" in by_symbol["write_by_identity"]
        assert "outside the wiring" in by_symbol["index_by_identity"]

    def test_sanctioned_patterns_are_clean(self):
        assert _lint("clean_machine.py") == []


# ---------------------------------------------------------------------------
# WIRE: wiring discipline
# ---------------------------------------------------------------------------


class TestWireRules:
    def test_subscript_and_api_access_fire(self):
        findings = _active("wire_violation.py")
        rules = sorted(f.rule for f in findings)
        assert rules == ["WIRE001", "WIRE001", "WIRE002"]
        symbols = {f.symbol for f in findings}
        assert symbols == {
            "direct_register_subscript",
            "direct_register_store",
            "direct_memory_api",
        }

    def test_harness_role_is_exempt(self):
        source = (FIXTURES / "wire_violation.py").read_text(encoding="utf-8")
        findings = LintEngine().lint_source(source, role="harness")
        assert findings == []


# ---------------------------------------------------------------------------
# INVAR: permutation invariance
# ---------------------------------------------------------------------------


class TestInvarRules:
    def test_unmarked_exported_property_fires(self):
        findings = [
            f for f in _active("invar_violation.py") if f.rule == "INVAR001"
        ]
        assert [f.symbol for f in findings] == ["unmarked_property"]
        assert "FIXTURE_SAFETY" in findings[0].message

    def test_equivariance_violations_fire(self):
        findings = [
            f for f in _active("invar_violation.py") if f.rule == "INVAR002"
        ]
        by_symbol = {f.symbol: f.message for f in findings}
        assert set(by_symbol) == {
            "repr_tie_break",
            "direct_repr_selection",
            "orders_identities",
            "positional_asymmetry",
        }
        assert "key=repr" in by_symbol["repr_tie_break"]
        assert "key=repr" in by_symbol["direct_repr_selection"]
        assert "ordering comparison on processor identity" in (
            by_symbol["orders_identities"]
        )
        assert "enumerate index" in by_symbol["positional_asymmetry"]

    def test_message_only_sort_is_exempt(self):
        symbols = {f.symbol for f in _active("invar_violation.py")}
        assert "message_only_sort" not in symbols

    def test_shipped_properties_are_clean(self):
        findings = LintEngine().lint_file(
            REPO_ROOT / "src" / "repro" / "checker" / "properties.py",
            root=REPO_ROOT,
        )
        assert findings == []


# ---------------------------------------------------------------------------
# POR: visibility-footprint honesty
# ---------------------------------------------------------------------------


class TestPorRule:
    def test_narrow_footprints_fire(self):
        findings = [
            f for f in _active("por_violation.py") if f.rule == "POR001"
        ]
        by_symbol = {f.symbol: f.message for f in findings}
        assert set(by_symbol) == {
            "reads_registers_undeclared",
            "reads_register_outside_footprint",
            "reads_locals_undeclared",
        }
        assert ".registers beyond its declared footprint" in (
            by_symbol["reads_registers_undeclared"]
        )
        assert ".locals" in by_symbol["reads_locals_undeclared"]
        assert "locals=True" in by_symbol["reads_locals_undeclared"]

    def test_covering_declarations_are_exempt(self):
        symbols = {
            f.symbol
            for f in _active("por_violation.py")
            if f.rule == "POR001"
        }
        assert "constant_subscripts_in_footprint" not in symbols
        assert "all_registers_declared" not in symbols
        assert "locals_declared" not in symbols

    def test_suppression_applies(self):
        suppressed = {
            f.symbol
            for f in LintEngine().lint_file(FIXTURES / "por_violation.py")
            if f.rule == "POR001" and f.suppressed
        }
        assert suppressed == {"suppressed_narrow_footprint"}

    def test_shipped_footprints_are_clean(self):
        findings = LintEngine().lint_file(
            REPO_ROOT / "src" / "repro" / "checker" / "properties.py",
            root=REPO_ROOT,
        )
        assert [f for f in findings if f.rule == "POR001"] == []


# ---------------------------------------------------------------------------
# WF: wait-freedom hygiene
# ---------------------------------------------------------------------------


class TestWfRule:
    def test_unguarded_loops_fire(self):
        findings = _active("wf_violation.py")
        assert all(f.rule == "WF001" for f in findings)
        by_symbol = {f.symbol: f.message for f in findings}
        assert set(by_symbol) == {"no_exit_loop", "unguarded_double_collect"}
        assert "no exit" in by_symbol["no_exit_loop"]
        assert "progress guard" in by_symbol["unguarded_double_collect"]

    def test_level_guarded_loop_is_exempt(self):
        symbols = {f.symbol for f in _active("wf_violation.py")}
        assert "level_guarded_loop" not in symbols


# ---------------------------------------------------------------------------
# Suppressions silence every rule
# ---------------------------------------------------------------------------


class TestSuppressedFixture:
    def test_all_seeded_violations_are_suppressed(self):
        findings = _lint("all_suppressed.py")
        assert [f for f in findings if not f.suppressed] == []
        suppressed_rules = {f.rule for f in findings if f.suppressed}
        assert suppressed_rules == {
            "ANON001",
            "WIRE001",
            "WIRE002",
            "INVAR001",
            "INVAR002",
            "WF001",
        }

    def test_suppressed_findings_are_still_reported(self):
        findings = _lint("all_suppressed.py")
        assert all(f.suppressed for f in findings)
        assert any("[suppressed]" in f.format() for f in findings)


# ---------------------------------------------------------------------------
# Baseline: keys, carry-over, staleness, provenance
# ---------------------------------------------------------------------------


class TestBaseline:
    def test_roundtrip_and_justification_carry(self, tmp_path):
        findings = _active("wf_violation.py")
        path = tmp_path / "baseline.json"
        write_baseline(path, findings, sha="abc1234")
        loaded = load_baseline(path)
        assert loaded.git_sha == "abc1234"
        assert {e.key for e in loaded.entries} == {f.key for f in findings}

        # Hand-edit a justification, regenerate: the why must survive.
        loaded.entries[0].justification = "deliberately lock-free"
        kept_key = loaded.entries[0].key
        write_baseline(path, findings, previous=loaded, sha="def5678")
        reloaded = load_baseline(path)
        by_key = {e.key: e.justification for e in reloaded.entries}
        assert by_key[kept_key] == "deliberately lock-free"

    def test_match_partitions_new_baselined_stale(self):
        findings = _active("wf_violation.py")
        baseline = Baseline(
            entries=[
                BaselineEntry(*findings[0].key),
                BaselineEntry("WF001", "gone.py", "old", "stale message"),
            ]
        )
        match = match_baseline(findings, baseline)
        assert [f.key for f in match.baselined] == [findings[0].key]
        assert [f.key for f in match.new] == [f.key for f in findings[1:]]
        assert [e.path for e in match.stale] == ["gone.py"]

    def test_match_is_multiset(self):
        findings = _active("wf_violation.py")
        duplicated = findings[:1] * 2
        baseline = Baseline(entries=[BaselineEntry(*findings[0].key)])
        match = match_baseline(duplicated, baseline)
        assert len(match.baselined) == 1 and len(match.new) == 1

    def test_missing_file_is_empty_baseline(self, tmp_path):
        baseline = load_baseline(tmp_path / "absent.json")
        assert baseline.entries == [] and baseline.git_sha is None

    def test_write_stamps_repo_git_sha(self, tmp_path):
        path = tmp_path / "baseline.json"
        write_baseline(path, [])
        # tmp_path is outside any work tree unless git walks up; compare
        # against what git itself says from that directory.
        probe = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, cwd=str(tmp_path),
        )
        expected = probe.stdout.strip() if probe.returncode == 0 else None
        assert load_baseline(path).git_sha == (expected or None)


# ---------------------------------------------------------------------------
# Reporters
# ---------------------------------------------------------------------------


class TestReporters:
    def test_text_report_counts(self):
        report = LintEngine().lint_paths([FIXTURES / "wf_violation.py"])
        match = match_baseline(report.active, Baseline())
        text = render_text(report, match)
        assert "2 new finding(s)" in text
        assert "anonlint: 1 files" in text

    def test_json_report_statuses(self):
        report = LintEngine().lint_paths([FIXTURES / "all_suppressed.py"])
        match = match_baseline(report.active, Baseline())
        payload = json.loads(render_json(report, match))
        statuses = {item["status"] for item in payload["findings"]}
        assert statuses == {"suppressed"}
        assert payload["schema"] == "anonlint-report/1"


# ---------------------------------------------------------------------------
# CLI: exit codes and the baseline workflow end to end
# ---------------------------------------------------------------------------


@pytest.fixture
def lint_project(tmp_path, monkeypatch):
    """A throwaway project with one seeded machine violation."""
    package = tmp_path / "pkg" / "core"
    package.mkdir(parents=True)
    (package / "algo.py").write_text(
        "def scan(pid, table):\n    return table[pid]\n", encoding="utf-8"
    )
    monkeypatch.chdir(tmp_path)
    return tmp_path


class TestCli:
    def test_new_finding_exits_nonzero(self, lint_project, capsys):
        assert main(["lint", "pkg"]) == 1
        out = capsys.readouterr().out
        assert "ANON001" in out and "1 new finding(s)" in out

    def test_baselined_finding_exits_zero(self, lint_project, capsys):
        assert main(["lint", "pkg", "--write-baseline"]) == 0
        assert "wrote 1 baseline entr(ies)" in capsys.readouterr().out
        assert main(["lint", "pkg"]) == 0
        out = capsys.readouterr().out
        assert "[baselined]" in out and "0 new finding(s)" in out

    def test_stale_entry_reported_but_passes(self, lint_project, capsys):
        assert main(["lint", "pkg", "--write-baseline"]) == 0
        algo = lint_project / "pkg" / "core" / "algo.py"
        algo.write_text(
            "def scan(wiring, pid, table):\n"
            "    return table[wiring[pid]]\n",
            encoding="utf-8",
        )
        capsys.readouterr()
        assert main(["lint", "pkg"]) == 0
        out = capsys.readouterr().out
        assert "1 stale baseline entr(ies)" in out

    def test_json_format(self, lint_project, capsys):
        assert main(["lint", "pkg", "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["findings"][0]["rule"] == "ANON001"


# ---------------------------------------------------------------------------
# Acceptance: the committed baseline describes the repository exactly
# ---------------------------------------------------------------------------


class TestRepositoryAcceptance:
    def test_src_is_clean_modulo_committed_baseline(self):
        report = LintEngine().lint_paths([REPO_ROOT / "src"], root=REPO_ROOT)
        baseline = load_baseline(REPO_ROOT / ".anonlint-baseline.json")
        match = match_baseline(report.active, baseline)
        assert match.new == [], [f.format() for f in match.new]
        assert match.stale == [], [e.key for e in match.stale]

    def test_the_one_baselined_finding_is_the_consensus_tie_break(self):
        baseline = load_baseline(REPO_ROOT / ".anonlint-baseline.json")
        assert len(baseline.entries) == 1
        entry = baseline.entries[0]
        assert entry.rule == "INVAR002"
        assert entry.path == "src/repro/core/consensus.py"
        assert entry.symbol == "decide_or_adopt"
        assert entry.justification  # accepted debt must say why

    def test_every_suppression_is_in_the_baselines_package(self):
        report = LintEngine().lint_paths([REPO_ROOT / "src"], root=REPO_ROOT)
        suppressed = report.suppressed
        assert len(suppressed) == 8
        assert all(f.path.startswith("src/repro/baselines/") for f in suppressed)
        assert {f.rule for f in suppressed} == {"ANON001", "WF001"}
