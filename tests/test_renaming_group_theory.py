"""Mechanizing the §6 argument: group snapshots still give safe names.

With a *group* solution to the snapshot task, two processors in the same
group may return incomparable snapshots, so "equal-size snapshots are
identical" — the classic Bar-Noy–Dolev safety argument — is lost.  The
paper's saving grace: incomparable snapshots only come from the same
group, and any other group's snapshot is either a superset of their
union or a subset of their intersection, so the sizes in between are
reserved for that group; collisions can only happen within a group,
which group solvability allows.  (The paper notes Gafni (2004) glossed
over exactly this point.)

These tests mechanize the argument: hypothesis generates arbitrary
group-valid snapshot families — chains with incomparable same-group
excursions — and asserts that the Bar-Noy–Dolev names never collide
across groups; a negative control shows the precondition is necessary
(cross-group incomparability does produce collisions).
"""

import random

from hypothesis import given, settings, strategies as st

from repro.core.renaming import bar_noy_dolev_name, renaming_bound
from repro.tasks import SnapshotTask, check_group_solution


@st.composite
def group_valid_snapshot_families(draw):
    """Generate (assignments, groups): a family of snapshot outputs that
    group-solves the snapshot task by construction.

    Structure: a chain of group-sets ``C_0 ⊂ C_1 ⊂ … ⊂ C_L``; ordinary
    processors output chain elements containing their group; one chosen
    group may additionally take *incomparable excursions* ``C_j ∪ {x}``
    for distinct ``x ∈ C_{j+1} \\ C_j`` — legal under Definition 3.4
    precisely because they all belong to that one group.
    """
    n_groups = draw(st.integers(min_value=2, max_value=6))
    group_ids = list(range(1, n_groups + 1))
    order = draw(st.permutations(group_ids))

    # Chain: prefixes of the order at random cut points.
    cuts = sorted(draw(
        st.sets(st.integers(1, n_groups), min_size=1, max_size=n_groups)
    ))
    chain = [frozenset(order[:cut]) for cut in cuts]

    members = []  # (group, output)
    for group in group_ids:
        containing = [c for c in chain if group in c]
        if not containing:
            chain.append(frozenset(order))
            containing = [frozenset(order)]
        for _ in range(draw(st.integers(min_value=1, max_value=2))):
            members.append((group, draw(st.sampled_from(containing))))

    # Incomparable excursions for one group, in one chain gap.
    gaps = [
        (chain[i], chain[i + 1])
        for i in range(len(chain) - 1)
        if len(chain[i + 1] - chain[i]) >= 2
    ]
    if gaps:
        low, high = draw(st.sampled_from(gaps))
        candidates = sorted(low)
        if candidates:
            group = draw(st.sampled_from(candidates))
            extras = sorted(high - low)
            for x in draw(
                st.lists(st.sampled_from(extras), min_size=1, max_size=2,
                         unique=True)
            ):
                members.append((group, low | {x}))

    assignments = {
        pid: (group, output) for pid, (group, output) in enumerate(members)
    }
    return assignments


class TestGeneratedFamiliesAreGroupValid:
    @given(group_valid_snapshot_families())
    @settings(max_examples=80, deadline=None)
    def test_family_group_solves_snapshot(self, assignments):
        inputs = {pid: group for pid, (group, _) in assignments.items()}
        outputs = {pid: output for pid, (_, output) in assignments.items()}
        check = check_group_solution(SnapshotTask(), inputs, outputs)
        assert check.valid, check.reason

    @given(group_valid_snapshot_families())
    @settings(max_examples=80, deadline=None)
    def test_generator_reaches_incomparable_same_group_outputs(self, assignments):
        """Non-vacuity is checked in aggregate by the dedicated test
        below; here just sanity-check self-inclusion."""
        for group, output in assignments.values():
            assert group in output

    def test_incomparable_excursions_do_occur(self):
        """The strategy genuinely produces the same-group incomparable
        case (otherwise the property test would be toothless)."""
        from hypothesis import find

        def has_incomparable_pair(assignments):
            items = list(assignments.values())
            for i, (g1, o1) in enumerate(items):
                for g2, o2 in items[i + 1:]:
                    if g1 == g2 and not (o1 <= o2 or o2 <= o1):
                        return True
            return False

        example = find(group_valid_snapshot_families(), has_incomparable_pair)
        assert has_incomparable_pair(example)


class TestSection6Lemma:
    @given(group_valid_snapshot_families())
    @settings(max_examples=150, deadline=None)
    def test_names_never_collide_across_groups(self, assignments):
        """The §6 claim: for ANY group-valid snapshot family, the
        Bar-Noy–Dolev names of processors in different groups differ."""
        named = [
            (group, bar_noy_dolev_name(output, group))
            for group, output in assignments.values()
        ]
        for i, (g1, n1) in enumerate(named):
            for g2, n2 in named[i + 1:]:
                if g1 != g2:
                    assert n1 != n2, (assignments, named)

    @given(group_valid_snapshot_families())
    @settings(max_examples=80, deadline=None)
    def test_names_within_adaptive_bound(self, assignments):
        participating = {group for group, _ in assignments.values()}
        bound = renaming_bound(len(participating))
        for group, output in assignments.values():
            assert 1 <= bar_noy_dolev_name(output, group) <= bound

    def test_negative_control_cross_group_incomparability_collides(self):
        """The precondition is necessary: snapshots incomparable ACROSS
        groups (illegal under Definition 3.4) do collide."""
        s = frozenset({1, 3})
        t = frozenset({2, 3})
        assert bar_noy_dolev_name(s, 1) == bar_noy_dolev_name(t, 2)
        # ...and such an assignment is indeed refuted by the group check.
        check = check_group_solution(
            SnapshotTask(), {0: 1, 1: 2, 2: 3}, {0: s, 1: t, 2: s | t}
        )
        assert not check.valid
