"""Failure injection: crashed processors.

In the asynchronous model a crash is indistinguishable from never being
scheduled again, so crashes are injected purely through scheduling.
Wait-freedom means every *surviving* processor still terminates with a
valid output no matter how many others crash, where they crashed, or
what their dying writes left in memory.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.core import RenamingMachine, SnapshotMachine
from repro.core.renaming import renaming_bound
from repro.core.views import all_comparable
from repro.memory import AnonymousMemory, WiringAssignment
from repro.sim import MachineProcess, RandomPolicy, Runner


class CrashScheduler:
    """Random scheduler that permanently stops chosen pids at chosen
    global steps."""

    def __init__(self, rng, crashes):
        self._rng = rng
        self._crashes = dict(crashes)  # pid -> crash step
        self._step = 0

    def choose(self, step_index, enabled):
        self._step = step_index
        alive = [
            pid for pid in enabled
            if self._crashes.get(pid, float("inf")) > step_index
        ]
        if not alive:
            return None
        return self._rng.choice(alive)


def run_with_crashes(machine, inputs, crashes, seed, max_steps=500_000):
    rng = random.Random(seed)
    n = len(inputs)
    wiring = WiringAssignment.random(n, machine.n_registers, rng)
    memory = AnonymousMemory(wiring, machine.register_initial_value())
    processes = [
        MachineProcess(pid, machine, inputs[pid], RandomPolicy(rng))
        for pid in range(n)
    ]
    runner = Runner(memory, processes, CrashScheduler(rng, crashes))
    result = runner.run(max_steps)
    return result


class TestSnapshotUnderCrashes:
    @given(
        st.integers(min_value=0, max_value=2**32),
        st.dictionaries(
            st.integers(0, 3), st.integers(0, 300), max_size=3
        ),
    )
    @settings(max_examples=40, deadline=None)
    def test_survivors_terminate_validly(self, seed, crashes):
        """Any subset of up to 3 of 4 processors crashing at arbitrary
        points: every survivor terminates, outputs stay a chain, and
        each contains its own input."""
        machine = SnapshotMachine(4)
        result = run_with_crashes(machine, [1, 2, 3, 4], crashes, seed)
        survivors = [pid for pid in range(4) if pid not in crashes]
        for pid in survivors:
            assert pid in result.outputs, f"survivor {pid} never terminated"
            assert (pid + 1) in result.outputs[pid]
        assert all_comparable(result.outputs.values())

    def test_all_but_one_crash_immediately(self):
        machine = SnapshotMachine(5)
        crashes = {pid: 0 for pid in range(1, 5)}
        result = run_with_crashes(machine, [1, 2, 3, 4, 5], crashes, seed=3)
        assert result.outputs.get(0) == frozenset({1})

    def test_crash_after_partial_write_still_safe(self):
        """A crasher's last write may cover/linger arbitrarily long; the
        survivors absorb or overwrite it without violating containment."""
        for seed in range(15):
            machine = SnapshotMachine(4)
            crashes = {1: 5, 2: 9}  # die mid-flight
            result = run_with_crashes(machine, [1, 2, 3, 4], crashes, seed)
            assert 0 in result.outputs and 3 in result.outputs
            assert all_comparable(result.outputs.values())

    def test_crashed_inputs_may_or_may_not_appear(self):
        """A crasher that wrote before dying can legitimately appear in
        survivors' snapshots (it participated); one that never stepped
        cannot."""
        machine = SnapshotMachine(3)
        # p2 never takes a single step.
        result = run_with_crashes(machine, [1, 2, 3], {2: 0}, seed=8)
        for pid, output in result.outputs.items():
            assert 3 not in output


class TestRenamingUnderCrashes:
    @given(
        st.integers(min_value=0, max_value=2**32),
        st.sets(st.integers(0, 4), max_size=3),
    )
    @settings(max_examples=30, deadline=None)
    def test_surviving_names_valid(self, seed, crashed_pids):
        group_ids = [1, 2, 3, 1, 2]
        machine = RenamingMachine(5)
        crashes = {pid: (seed % 40) for pid in crashed_pids}
        result = run_with_crashes(machine, group_ids, crashes, seed)
        survivors = [pid for pid in range(5) if pid not in crashed_pids]
        names = {pid: result.outputs[pid] for pid in survivors}
        # Uniqueness across groups among those who got names (including
        # any crasher that finished before its crash step).
        for p in result.outputs:
            for q in result.outputs:
                if p < q and group_ids[p] != group_ids[q]:
                    assert result.outputs[p] != result.outputs[q]
        # Participating groups bound the namespace adaptively.
        participants = result.trace.participants()
        m = len({group_ids[pid] for pid in participants})
        assert all(
            1 <= name <= renaming_bound(m) for name in result.outputs.values()
        )


class TestCrashSchedulerMechanics:
    def test_crashed_pid_never_scheduled_after_step(self):
        machine = SnapshotMachine(3)
        rng = random.Random(0)
        wiring = WiringAssignment.random(3, 3, rng)
        memory = AnonymousMemory(wiring, machine.register_initial_value())
        processes = [
            MachineProcess(pid, machine, pid + 1, RandomPolicy(rng))
            for pid in range(3)
        ]
        runner = Runner(memory, processes, CrashScheduler(rng, {1: 7}))
        result = runner.run(100_000)
        late_steps = [
            pid for index, pid in enumerate(result.schedule) if index >= 7
        ]
        assert 1 not in late_steps

    def test_everyone_crashed_stops_run(self):
        machine = SnapshotMachine(2)
        result = run_with_crashes(machine, [1, 2], {0: 0, 1: 0}, seed=1)
        assert result.steps == 0
        assert result.outputs == {}
