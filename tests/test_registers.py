"""Unit tests for the MWMR atomic register bank."""

import pytest

from repro.memory.registers import RegisterArray


class TestConstruction:
    def test_initial_contents(self):
        bank = RegisterArray(3, initial_value=frozenset())
        assert bank.size == 3
        assert list(bank) == [frozenset()] * 3

    def test_default_initial_value_is_none(self):
        bank = RegisterArray(2)
        assert bank.read(0) is None
        assert bank.initial_value is None

    def test_zero_size_rejected(self):
        with pytest.raises(ValueError):
            RegisterArray(0)

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            RegisterArray(-1)

    def test_len_matches_size(self):
        assert len(RegisterArray(5)) == 5


class TestReadWrite:
    def test_write_then_read(self):
        bank = RegisterArray(2)
        bank.write(1, "value", writer=0)
        assert bank.read(1) == "value"
        assert bank.read(0) is None

    def test_overwrite_replaces(self):
        bank = RegisterArray(1)
        bank.write(0, "first", writer=0)
        bank.write(0, "second", writer=1)
        assert bank.read(0) == "second"

    def test_unhashable_value_rejected(self):
        bank = RegisterArray(1)
        with pytest.raises(TypeError):
            bank.write(0, ["unhashable", "list"])

    def test_out_of_range_read_raises(self):
        bank = RegisterArray(2)
        with pytest.raises(IndexError):
            bank.read(5)


class TestMetadata:
    def test_last_writer_initially_none(self):
        bank = RegisterArray(2)
        assert bank.last_writer(0) is None
        assert bank.last_writer(1) is None

    def test_last_writer_tracks_writes(self):
        bank = RegisterArray(2)
        bank.write(0, "x", writer=3)
        assert bank.last_writer(0) == 3
        bank.write(0, "y", writer=1)
        assert bank.last_writer(0) == 1

    def test_versions_count_writes(self):
        bank = RegisterArray(1)
        assert bank.version(0) == 0
        bank.write(0, "a", writer=0)
        bank.write(0, "a", writer=0)  # same value still bumps version
        assert bank.version(0) == 2

    def test_snapshot_is_immutable_copy(self):
        bank = RegisterArray(2)
        bank.write(0, "x", writer=0)
        snap = bank.snapshot()
        bank.write(0, "y", writer=1)
        assert snap == ("x", None)

    def test_last_writers_tuple(self):
        bank = RegisterArray(3)
        bank.write(2, "v", writer=7)
        assert bank.last_writers() == (None, None, 7)

    def test_registers_last_written_by(self):
        bank = RegisterArray(4)
        bank.write(0, "a", writer=0)
        bank.write(1, "b", writer=1)
        bank.write(2, "c", writer=0)
        assert bank.registers_last_written_by([0]) == (0, 2)
        assert bank.registers_last_written_by([1]) == (1,)
        assert bank.registers_last_written_by([0, 1]) == (0, 1, 2)
        assert bank.registers_last_written_by([9]) == ()

    def test_registers_last_written_by_ignores_initial(self):
        bank = RegisterArray(2)
        # None writers (initial values) never match a processor list.
        assert bank.registers_last_written_by([0, 1]) == ()
