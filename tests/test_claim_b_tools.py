"""Tests for the claim-B tooling internals (`checker.claim_b` and the
fast atomicity search)."""

import pytest

from repro.checker.claim_b import (
    ClaimBResult,
    exhaustive_claim_b_search,
    sweep_all_wirings,
)
from repro.checker.fast_snapshot import (
    FastAtomicitySearch,
    FastSnapshotSpec,
    replay_fast_hit,
)


class TestClaimBSearchInterface:
    def test_wirings_normalized_to_tuples(self):
        result = exhaustive_claim_b_search(
            [[0, 1, 2], [0, 1, 2], [0, 1, 2]], max_visited=100
        )
        assert result.wiring == ((0, 1, 2), (0, 1, 2), (0, 1, 2))

    def test_budget_honesty(self):
        result = exhaustive_claim_b_search(
            ((0, 1, 2), (0, 1, 2), (0, 1, 2)), max_visited=500
        )
        assert isinstance(result, ClaimBResult)
        assert not result.exhausted
        assert not result.found
        assert result.states >= 500

    def test_sweep_covers_all_36_wirings(self):
        results = sweep_all_wirings(max_visited=200)
        assert len(results) == 36
        wirings = {r.wiring for r in results}
        assert len(wirings) == 36
        assert all(w[0] == (0, 1, 2) for w in wirings)

    def test_no_witness_found_anywhere_quick(self):
        """Smoke version of the E5b sweep: none of the tiny-budget
        searches may *find* a witness (a found witness would be a real
        counterexample and a soundness bug somewhere)."""
        for result in sweep_all_wirings(max_visited=2_000):
            assert not result.found


class TestFastAtomicitySearch:
    def test_union_mask(self):
        spec = FastSnapshotSpec([1, 2, 3], [(0, 1, 2)] * 3)
        search = FastAtomicitySearch(spec)
        assert search.memory_union_mask(spec.initial_state()) == 0

    def test_successors_with_actions_tags_writes(self):
        spec = FastSnapshotSpec([1, 2], [(0, 1)] * 2)
        search = FastAtomicitySearch(spec)
        successors = search.successors_with_actions(spec.initial_state())
        # Initially both processors have two write choices each.
        assert len(successors) == 4
        assert all(action in (0, 1) for _, action, _ in successors)

    def test_dfs_budget_returns_none(self):
        spec = FastSnapshotSpec([1, 2, 3], [(0, 1, 2)] * 3)
        search = FastAtomicitySearch(spec)
        hit, visited = search.dfs(max_visited=2_000)
        assert hit is None
        assert visited >= 2_000

    def test_dfs_exhausts_n2_without_hit(self):
        """For N=2 the whole augmented space fits: the DFS must drain it
        with no hit (consistent with the exhaustive BFS result)."""
        spec = FastSnapshotSpec([1, 2], [(0, 1)] * 2)
        search = FastAtomicitySearch(spec)
        hit, visited = search.dfs(max_visited=10_000_000)
        assert hit is None
        assert visited < 10_000_000  # it genuinely finished

    def test_too_many_inputs_rejected(self):
        spec = FastSnapshotSpec(
            list(range(17)), [tuple(range(17))] * 17, n_registers=17
        )
        with pytest.raises(ValueError):
            FastAtomicitySearch(spec)


class TestReplayFastHit:
    def test_replay_of_synthetic_schedule(self):
        """replay_fast_hit drives the generic machine along a recorded
        (pid, register-or-None) schedule; verify with a hand schedule
        that terminates one processor."""
        from repro.checker.fast_snapshot import FastAtomicityHit
        from repro.core import SnapshotMachine

        # Solo run of pid 0 on N=1/M=1 terminates after one cycle.
        schedule = [(0, 0), (0, None)]
        hit = FastAtomicityHit(
            pid=0, output=frozenset({1}), schedule=schedule
        )
        outputs, never = replay_fast_hit(
            SnapshotMachine(1, n_registers=1), [1], [(0,)], hit
        )
        assert outputs == {0: frozenset({1})}
        # The union equals the output at some point, so "never" is False
        # — replay reports honestly.
        assert never is False
