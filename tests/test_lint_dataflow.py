"""Unit tests for the anonlint dataflow engine (cfg + taint fixpoint).

The rule-level behavior is pinned down in ``test_lint.py``; here the
shared engine is tested directly: CFG shape for each compound
statement, the ``own_nodes`` header-only traversal contract, and the
taint fixpoint's propagation policy (strong updates, joins, loop
back-edges, the baked-in laundering exemptions).
"""

import ast
import textwrap

from repro.lint.cfg import build_cfg, own_nodes
from repro.lint.dataflow import EMPTY, TaintAnalysis, TaintDomain

T = frozenset({"T"})
IDX = frozenset({"IDX"})


def _func(source):
    node = ast.parse(textwrap.dedent(source)).body[0]
    assert isinstance(node, ast.FunctionDef)
    return node


class SourceDomain(TaintDomain):
    """Seeds tag ``T`` on any parameter named ``src``."""

    def param_tags(self, func, arg, index):
        return T if arg.arg == "src" else EMPTY

    def enumerate_index_tags(self):
        return IDX


def _analyze(source):
    return TaintAnalysis(_func(source), SourceDomain())


def _return_tags(analysis):
    for stmt, env in analysis.statements():
        if isinstance(stmt, ast.Return) and stmt.value is not None:
            return analysis.tags(env, stmt.value)
    raise AssertionError("function has no value-returning statement")


# ---------------------------------------------------------------------------
# CFG construction
# ---------------------------------------------------------------------------


class TestCfg:
    def test_linear_body_is_one_block_into_exit(self):
        cfg = build_cfg(_func(
            """
            def f(x):
                y = x
                return y
            """
        ))
        entry = cfg.blocks[cfg.entry]
        assert len(entry.stmts) == 2
        assert entry.succ == [cfg.exit]

    def test_if_branches_rejoin(self):
        cfg = build_cfg(_func(
            """
            def f(flag):
                if flag:
                    y = 1
                else:
                    y = 2
                return y
            """
        ))
        entry = cfg.blocks[cfg.entry]
        # The header stays in the entry block; both branch entries are
        # its successors and both branches feed one join block.
        assert isinstance(entry.stmts[-1], ast.If)
        assert len(entry.succ) == 2
        joins = {
            dst
            for bid in entry.succ
            for dst in cfg.blocks[bid].succ
        }
        assert len(joins) == 1

    def test_while_head_keeps_exit_edge_even_for_while_true(self):
        cfg = build_cfg(_func(
            """
            def f():
                while True:
                    pass
            """
        ))
        heads = [
            block
            for block in cfg.blocks.values()
            if block.stmts and isinstance(block.stmts[0], ast.While)
        ]
        assert len(heads) == 1
        # Body entry and after block: the exit edge is kept so the
        # dataflow join stays conservative.
        assert len(heads[0].succ) == 2

    def test_loop_body_has_back_edge_to_head(self):
        cfg = build_cfg(_func(
            """
            def f(n):
                i = 0
                while i < n:
                    i = i + 1
                return i
            """
        ))
        head = next(
            block.block_id
            for block in cfg.blocks.values()
            if block.stmts and isinstance(block.stmts[0], ast.While)
        )
        back = [
            block.block_id
            for block in cfg.blocks.values()
            if head in block.succ and block.block_id != cfg.entry
        ]
        assert back, "loop body must loop back to the head"

    def test_code_after_return_is_an_orphan_block(self):
        cfg = build_cfg(_func(
            """
            def f(x):
                return x
                y = 1
            """
        ))
        preds = cfg.predecessors()
        orphan = [
            block
            for block in cfg.blocks.values()
            if block.stmts
            and not preds[block.block_id]
            and block.block_id != cfg.entry
        ]
        assert len(orphan) == 1
        assert isinstance(orphan[0].stmts[0], ast.Assign)

    def test_break_targets_the_loop_exit(self):
        cfg = build_cfg(_func(
            """
            def f(items):
                for item in items:
                    if item:
                        break
                return items
            """
        ))
        # The break's block must reach the same block the for-head's
        # natural exit edge reaches.
        head = next(
            block
            for block in cfg.blocks.values()
            if block.stmts and isinstance(block.stmts[0], ast.For)
        )
        body_entry, after = head.succ
        break_blocks = [
            block
            for block in cfg.blocks.values()
            if block.stmts and isinstance(block.stmts[-1], ast.Break)
        ]
        assert len(break_blocks) == 1
        assert after in break_blocks[0].succ

    def test_rpo_starts_at_entry(self):
        cfg = build_cfg(_func("def f():\n    return 1\n"))
        assert cfg.rpo()[0] == cfg.entry

    def test_own_nodes_stays_out_of_nested_bodies(self):
        stmt = _func(
            """
            def f(flag, x):
                if flag and x:
                    hidden = x + 1
            """
        ).body[0]
        names = {
            node.id for node in own_nodes(stmt) if isinstance(node, ast.Name)
        }
        assert names == {"flag", "x"}
        assert "hidden" not in names


# ---------------------------------------------------------------------------
# Taint fixpoint
# ---------------------------------------------------------------------------


class TestTaintAnalysis:
    def test_assignment_propagates_and_alias_carries(self):
        analysis = _analyze(
            """
            def f(src):
                alias = src
                other = alias
                return other
            """
        )
        assert _return_tags(analysis) == T

    def test_reassignment_is_a_strong_update(self):
        analysis = _analyze(
            """
            def f(src):
                x = src
                x = 0
                return x
            """
        )
        assert _return_tags(analysis) == EMPTY

    def test_branch_join_is_a_union(self):
        analysis = _analyze(
            """
            def f(src, flag):
                if flag:
                    y = src
                else:
                    y = 0
                return y
            """
        )
        assert _return_tags(analysis) == T

    def test_loop_carried_taint_crosses_the_back_edge(self):
        analysis = _analyze(
            """
            def f(src, n):
                acc = 0
                i = 0
                while i < n:
                    acc = acc + src
                    i = i + 1
                return acc
            """
        )
        assert _return_tags(analysis) == T

    def test_membership_test_launders(self):
        analysis = _analyze(
            """
            def f(src, seen):
                present = src in seen
                return present
            """
        )
        assert _return_tags(analysis) == EMPTY

    def test_fstring_launders(self):
        analysis = _analyze(
            """
            def f(src):
                message = f"processor {src} made progress"
                return message
            """
        )
        assert _return_tags(analysis) == EMPTY

    def test_tainted_index_does_not_taint_the_lookup(self):
        analysis = _analyze(
            """
            def f(src, table):
                value = table[src]
                return value
            """
        )
        assert _return_tags(analysis) == EMPTY

    def test_tainted_container_taints_its_elements(self):
        analysis = _analyze(
            """
            def f(src, i):
                pair = (src, 0)
                return pair[i]
            """
        )
        assert _return_tags(analysis) == T

    def test_receiver_mutation_absorbs_value_tags(self):
        analysis = _analyze(
            """
            def f(src):
                acc = []
                acc.append(src)
                return acc
            """
        )
        assert _return_tags(analysis) == T

    def test_setdefault_key_position_is_exempt(self):
        analysis = _analyze(
            """
            def f(src):
                table = {}
                table.setdefault(src, [])
                return table
            """
        )
        assert _return_tags(analysis) == EMPTY

    def test_walrus_binding_is_tracked(self):
        analysis = _analyze(
            """
            def f(src):
                if (alias := src):
                    pass
                return alias
            """
        )
        assert _return_tags(analysis) == T

    def test_enumerate_unpacking_seeds_index_tags_only(self):
        analysis = _analyze(
            """
            def f(items):
                last = None
                for index, item in enumerate(items):
                    last = index
                    payload = item
                return last
            """
        )
        assert _return_tags(analysis) == IDX

    def test_comprehension_binds_element_tags(self):
        analysis = _analyze(
            """
            def f(src):
                tainted = [src, src]
                doubled = [value for value in tainted]
                return doubled
            """
        )
        assert _return_tags(analysis) == T

    def test_try_handler_sees_pre_try_environment(self):
        # A raise can interrupt the body before the laundering
        # assignment runs, so the handler must still see the taint.
        analysis = _analyze(
            """
            def f(src, risky):
                x = src
                try:
                    x = risky()
                except ValueError:
                    pass
                return x
            """
        )
        assert _return_tags(analysis) == T
