"""Property tests for the view value types (`repro.core.views`)."""

from hypothesis import given, strategies as st

from repro.core.views import (
    RegisterRecord,
    all_comparable,
    comparable,
    view,
)

sets = st.frozensets(st.integers(0, 10), max_size=6)


class TestViewHelper:
    def test_view_constructor(self):
        assert view(1, 2) == frozenset({1, 2})
        assert view() == frozenset()

    def test_view_is_hashable(self):
        assert hash(view(1, 2)) == hash(frozenset({1, 2}))


class TestComparable:
    @given(sets)
    def test_reflexive(self, s):
        assert comparable(s, s)

    @given(sets, sets)
    def test_symmetric(self, a, b):
        assert comparable(a, b) == comparable(b, a)

    @given(sets)
    def test_empty_comparable_with_everything(self, s):
        assert comparable(frozenset(), s)

    def test_incomparable_pair(self):
        assert not comparable({1, 2}, {2, 3})

    @given(sets, sets)
    def test_matches_definition(self, a, b):
        assert comparable(a, b) == (a <= b or b <= a)

    def test_accepts_any_iterable(self):
        assert comparable([1, 2], (1, 2, 3))


class TestAllComparable:
    @given(st.lists(sets, max_size=6))
    def test_matches_pairwise_definition(self, family):
        pairwise = all(
            comparable(a, b)
            for i, a in enumerate(family)
            for b in family[i + 1:]
        )
        assert all_comparable(family) == pairwise

    @given(sets, st.integers(1, 5))
    def test_chain_of_prefixes_comparable(self, base, length):
        ordered = sorted(base)
        chain = [frozenset(ordered[:i]) for i in range(length)]
        assert all_comparable(chain)

    def test_empty_family(self):
        assert all_comparable([])

    def test_single_element(self):
        assert all_comparable([{1, 2}])

    def test_duplicates_allowed(self):
        assert all_comparable([{1}, {1}, {1, 2}])

    def test_counterexample(self):
        assert not all_comparable([{1}, {1, 2}, {1, 3}])


class TestRegisterRecord:
    def test_defaults(self):
        record = RegisterRecord()
        assert record.view == frozenset()
        assert record.level == 0

    def test_equality_and_hash(self):
        a = RegisterRecord(view(1, 2), 1)
        b = RegisterRecord(frozenset({2, 1}), 1)
        assert a == b and hash(a) == hash(b)
        assert a != RegisterRecord(view(1, 2), 2)

    def test_immutability(self):
        import dataclasses
        import pytest

        record = RegisterRecord(view(1), 0)
        with pytest.raises(dataclasses.FrozenInstanceError):
            record.level = 3

    def test_repr_compact(self):
        assert repr(RegisterRecord(view(1, 2), 3)) == "<{1,2}|3>"
        assert repr(RegisterRecord()) == "<{}|0>"
