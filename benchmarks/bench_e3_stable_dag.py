"""E3 — Theorem 4.8: stable views form a single-source DAG.

Sweeps randomized periodic schedules across system sizes; every run is
driven to a certified lasso (exact stable views), and the theorem is
checked on every resulting stable-view graph.  Reports the distribution
of graph shapes (number of stable views, chain vs branching).
"""

import random
from collections import Counter

from repro.analysis import stable_view_graph_from_lasso
from repro.core import WriteScanMachine
from repro.memory import AnonymousMemory, WiringAssignment
from repro.sim import MachineProcess, PeriodicScheduler, Runner

from _bench_utils import SEEDS, emit


def survey(n_runs: int):
    rng = random.Random(0xE3)
    shapes = Counter()
    checked = 0
    violations = 0
    for _ in range(n_runs):
        n = rng.randint(2, 5)
        machine = WriteScanMachine(n)
        wiring = WiringAssignment.random(n, n, rng)
        memory = AnonymousMemory(wiring, machine.register_initial_value())
        processes = [
            MachineProcess(pid, machine, pid + 1) for pid in range(n)
        ]
        pattern = [rng.randrange(n) for _ in range(rng.randint(1, 3 * n))]
        result = Runner(
            memory, processes, PeriodicScheduler(pattern), detect_lasso=True
        ).run(2_000_000)
        if result.lasso is None:
            continue
        graph = stable_view_graph_from_lasso(result)
        checked += 1
        if not (graph.is_dag() and graph.has_unique_source()):
            violations += 1
        vertices = len(graph.vertices)
        branching = vertices > 1 and len(graph.edges) > vertices - 1
        shapes[(n, vertices, "branching" if branching else "chain")] += 1
    return shapes, checked, violations


def test_e3_stable_view_dag(benchmark):
    shapes, checked, violations = benchmark(lambda: survey(SEEDS * 5))

    assert checked > 0
    assert violations == 0, f"{violations} Theorem 4.8 violations!"

    benchmark.extra_info["runs_checked"] = checked
    benchmark.extra_info["violations"] = violations
    rows = [
        "",
        "E3 — Theorem 4.8 survey (randomized periodic schedules):",
        f"  {checked} certified infinite executions,"
        f" {violations} single-source-DAG violations",
        f"  {'N':>3} {'stable views':>13} {'shape':>10} {'count':>6}",
    ]
    for (n, vertices, shape), count in sorted(shapes.items()):
        rows.append(f"  {n:>3} {vertices:>13} {shape:>10} {count:>6}")
    emit(*rows)
