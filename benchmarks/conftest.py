"""Pytest hooks for the benchmark harness (see _bench_utils.py)."""
