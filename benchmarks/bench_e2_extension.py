"""E2 — the five-processor extension: naive termination rules refuted.

Regenerates the Section 4.1 construction in which p and p' read
constant, incomparable collects forever, and derives the refutation:
the double-collect rule would output {1,2} and {1,3} — not related by
containment — so neither "same set everywhere" nor double collect is a
sound termination rule in the fully-anonymous model.
"""

from repro.baselines import double_collect_outputs_from_trace
from repro.core.views import view
from repro.memory.trace import ReadEvent
from repro.sim.scripted import FIGURE2_N_REGISTERS, build_extension_runner

from _bench_utils import emit


def regenerate_extension():
    runner = build_extension_runner(n_cycles=12, detect_lasso=True)
    result = runner.run(10 ** 6)
    dc_outputs = double_collect_outputs_from_trace(
        result.trace, FIGURE2_N_REGISTERS
    )
    p_reads = {pid: set() for pid in (3, 4)}
    for event in result.trace:
        if isinstance(event, ReadEvent) and event.pid in p_reads:
            p_reads[event.pid].add(event.value)
    return runner, result, dc_outputs, p_reads


def test_e2_extension_refutes_double_collect(benchmark):
    runner, result, dc_outputs, p_reads = benchmark(regenerate_extension)

    # The infinite execution is certified and all five processors live.
    assert result.lasso is not None
    assert result.lasso.cycle_pids == (0, 1, 2, 3, 4)
    # p only ever reads {1,2}; p' only ever reads {1,3}.
    assert p_reads[3] == {view(1, 2)}
    assert p_reads[4] == {view(1, 3)}
    # The double-collect rule fires for both and yields incomparable sets.
    p_out, p_prime_out = dc_outputs[3], dc_outputs[4]
    assert p_out == view(1, 2) and p_prime_out == view(1, 3)
    assert not (p_out <= p_prime_out or p_prime_out <= p_out)

    benchmark.extra_info["p_output"] = sorted(p_out)
    benchmark.extra_info["p_prime_output"] = sorted(p_prime_out)
    benchmark.extra_info["cycle_steps"] = result.lasso.cycle_length
    emit(
        "",
        "E2 — five-processor extension (Section 4.1):",
        f"  certified infinite: cycle of {result.lasso.cycle_length} steps,"
        f" live pids {result.lasso.cycle_pids}",
        f"  p  reads only {sorted(view(1, 2))} in every register, forever",
        f"  p' reads only {sorted(view(1, 3))} in every register, forever",
        f"  double-collect outputs: p -> {sorted(p_out)},"
        f" p' -> {sorted(p_prime_out)}  (INCOMPARABLE: rule refuted)",
    )
