"""E14 (extension) — complexity characterization of the snapshot algorithm.

The paper states no step bounds; this extension experiment measures the
implementation's cost model:

- **solo latency** follows a cubic law: a solo climb is
  ``(fill + climb) ≈ (N + N²) cycles of (N+1) steps`` — the level is
  min-of-registers + 1 and the minimum rises only after a full
  round-robin rewrite;
- **contended latency** (random schedules): mean/max steps per
  processor to output, vs N — wait-freedom's price under interference;
- **register surplus**: extra registers slow the algorithm down
  (longer scans, longer fill), quantifying why the paper's exact-N
  choice is also the practical one.
"""

import random
import statistics

from repro.api import build_runner, run_snapshot
from repro.core import SnapshotMachine
from repro.memory.wiring import WiringAssignment
from repro.sim import SoloScheduler

from _bench_utils import SEEDS, emit


def solo_curve(sizes):
    rows = []
    for n in sizes:
        machine = SnapshotMachine(n)
        runner = build_runner(
            machine, list(range(n)), seed=None,
            wiring=WiringAssignment.identity(n, n),
            scheduler=SoloScheduler(0),
        )
        result = runner.run(10 ** 7)
        steps = result.trace.step_counts()[0]
        model = (n * n + 2 * n) * (n + 1)  # fill+climb cycles x cycle cost
        rows.append((n, steps, model))
    return rows


def contended_curve(sizes, seeds):
    rows = []
    for n in sizes:
        samples = []
        for seed in range(seeds):
            result = run_snapshot(
                list(range(1, n + 1)), seed=seed * 13 + n,
                max_steps=10 ** 7,
            )
            samples.extend(result.trace.step_counts().values())
        rows.append((n, statistics.mean(samples), max(samples)))
    return rows


def register_surplus_curve(n, extras, seeds):
    rows = []
    for extra in extras:
        samples = []
        for seed in range(seeds):
            result = run_snapshot(
                list(range(1, n + 1)), seed=seed * 7 + extra,
                n_registers=n + extra, max_steps=10 ** 7,
            )
            samples.extend(result.trace.step_counts().values())
        rows.append((n + extra, statistics.mean(samples)))
    return rows


def test_e14_solo_cubic(benchmark):
    rows = benchmark(lambda: solo_curve([2, 3, 4, 5, 6, 8]))
    # Shape: measured within a constant factor of the cubic model, and
    # clearly superquadratic.
    for n, steps, model in rows:
        assert steps <= 2 * model
        assert steps >= n ** 2
    ratios = [steps / (n ** 3) for n, steps, _ in rows]
    # The N^3 coefficient stabilizes (cubic, not quadratic or quartic).
    assert max(ratios[2:]) / min(ratios[2:]) < 2.5
    benchmark.extra_info["curve"] = [
        {"n": n, "steps": steps, "model": model} for n, steps, model in rows
    ]
    lines = ["", "E14a — solo snapshot latency (cubic law):",
             f"  {'N':>3} {'measured steps':>15} {'(N²+2N)(N+1) model':>20}"]
    for n, steps, model in rows:
        lines.append(f"  {n:>3} {steps:>15} {model:>20}")
    emit(*lines)


def test_e14_contended_scaling(benchmark):
    sizes = [2, 3, 4, 5, 6]
    rows = benchmark(lambda: contended_curve(sizes, max(4, SEEDS // 4)))
    means = [mean for _, mean, _ in rows]
    assert all(a < b for a, b in zip(means, means[1:])), "not monotone"
    benchmark.extra_info["curve"] = [
        {"n": n, "mean": round(mean, 1), "max": peak}
        for n, mean, peak in rows
    ]
    lines = ["", "E14b — contended snapshot latency (random schedules):",
             f"  {'N':>3} {'mean steps/proc':>16} {'max':>7}"]
    for n, mean, peak in rows:
        lines.append(f"  {n:>3} {mean:>16.1f} {peak:>7}")
    emit(*lines)


def footnote4_savings(sizes, seeds):
    """Contended cost of terminating at level N vs N-1 (footnote 4)."""
    rows = []
    for n in sizes:
        costs = {}
        for target in (n, n - 1):
            samples = []
            for seed in range(seeds):
                result = run_snapshot(
                    list(range(1, n + 1)), seed=seed * 11 + n,
                    level_target=target, max_steps=10 ** 7,
                )
                samples.extend(result.trace.step_counts().values())
            costs[target] = statistics.mean(samples)
        rows.append((n, costs[n], costs[n - 1]))
    return rows


def test_e14_footnote4_ablation(benchmark):
    """The paper's footnote 4: level N-1 already suffices.  Measure
    what the extra level costs — the one design knob the paper calls
    out explicitly."""
    sizes = [3, 4, 5, 6]
    rows = benchmark(lambda: footnote4_savings(sizes, max(4, SEEDS // 4)))
    for n, full, reduced in rows:
        assert reduced < full, (n, full, reduced)
    benchmark.extra_info["rows"] = [
        {"n": n, "level_N": round(full, 1), "level_N_minus_1": round(red, 1)}
        for n, full, red in rows
    ]
    lines = ["", "E14d — footnote-4 ablation (mean steps/proc, contended):",
             f"  {'N':>3} {'terminate@N':>12} {'terminate@N-1':>14}"
             f" {'saving':>8}"]
    for n, full, reduced in rows:
        lines.append(
            f"  {n:>3} {full:>12.1f} {reduced:>14.1f}"
            f" {100 * (full - reduced) / full:>7.1f}%"
        )
    emit(*lines)


def test_e14_register_surplus_costs(benchmark):
    rows = benchmark(
        lambda: register_surplus_curve(4, [0, 2, 4, 8], max(4, SEEDS // 4))
    )
    means = [mean for _, mean in rows]
    assert means[0] < means[-1], "surplus registers should cost steps"
    benchmark.extra_info["curve"] = [
        {"registers": m, "mean": round(mean, 1)} for m, mean in rows
    ]
    lines = ["", "E14c — register surplus (N=4 processors):",
             f"  {'registers M':>12} {'mean steps/proc':>16}"]
    for m, mean in rows:
        lines.append(f"  {m:>12} {mean:>16.1f}")
    lines.append("  (scans and fill cycles lengthen with M: exactly N"
                 " registers is the practical choice too)")
    emit(*lines)
