"""E4 — TLC claim A: model checking the snapshot algorithm.

The paper: "The TLC model-checker is able to exhaustively explore all
3-processor executions of this algorithm, and it confirms that the
algorithm solves the snapshot task wait-free."

Reproduction:

- **N=2, exhaustive, certified**: every wiring (up to relabelling),
  every reachable state checked against the snapshot safety invariants,
  wait-freedom certified by lasso analysis of the full state graph.
- **N=3, per canonical wiring class**: the bitmask explorer sweeps each
  of the 10 classes (wirings up to relabelling + processor permutation)
  under a state budget (exhaustive N=3 is ~10^7-10^8 states per class —
  set ``REPRO_E4_FULL=1`` for the unbounded run).  Zero violations.
- **N=3 statistical**: a large randomized-schedule sweep through full
  terminations as a depth-complement to the breadth-bounded sweep.
"""

import random

from repro.api import run_snapshot
from repro.checker import Explorer, SystemSpec
from repro.checker.liveness import check_wait_freedom
from repro.checker.parallel import check_snapshot_classes
from repro.checker.properties import SNAPSHOT_SAFETY
from repro.core import SnapshotMachine
from repro.core.views import all_comparable
from repro.memory.wiring import enumerate_wiring_assignments

from _bench_utils import E4_BUDGET, E4_JOBS, E4_STORE, SEEDS, emit


def check_n2():
    rows = []
    for wiring in enumerate_wiring_assignments(2, 2):
        spec = SystemSpec(SnapshotMachine(2), [1, 2], wiring)
        result = Explorer(spec, SNAPSHOT_SAFETY, keep_edges=True).run()
        violations = check_wait_freedom(spec, result)
        rows.append((wiring.permutations(), result, violations))
    return rows


def check_n3_classes(jobs=E4_JOBS, store=E4_STORE):
    """E4's N=3 entry point; ``jobs > 1`` sweeps classes in parallel.

    ``REPRO_E4_STORE=mmap|spill`` swaps the visited-set backend (all
    backends report identical states/transitions/verdicts; the disk
    ones bound RAM for ``REPRO_E4_FULL=1`` runs).
    """
    config = None
    if store != "ram":
        from repro.store import StoreConfig

        config = StoreConfig(backend=store)
    return check_snapshot_classes(3, budget=E4_BUDGET, jobs=jobs, store=config)


def check_n3_statistical(runs):
    violations = 0
    for seed in range(runs):
        result = run_snapshot([1, 2, 3], seed=seed)
        ok = (
            result.all_terminated
            and all_comparable(result.outputs.values())
            and all(
                (pid + 1) in output for pid, output in result.outputs.items()
            )
        )
        if not ok:
            violations += 1
    return violations


def test_e4_n2_exhaustive(benchmark):
    rows = benchmark(check_n2)
    for _, result, violations in rows:
        assert result.complete and result.ok
        assert violations == []
    benchmark.extra_info["wirings"] = len(rows)
    benchmark.extra_info["states_per_wiring"] = rows[0][1].states
    lines = ["", "E4a — N=2 exhaustive (safety + wait-freedom certified):"]
    for perms, result, _ in rows:
        lines.append(
            f"  wiring {perms}: {result.states} states,"
            f" {result.transitions} transitions, depth {result.depth},"
            f" 0 violations, wait-free"
        )
    emit(*lines)


def test_e4_n3_canonical_classes(benchmark):
    rows = benchmark(check_n3_classes)
    for _, result in rows:
        assert result.ok, result.violation
    benchmark.extra_info["classes"] = len(rows)
    benchmark.extra_info["budget"] = E4_BUDGET
    benchmark.extra_info["jobs"] = E4_JOBS
    benchmark.extra_info["store"] = E4_STORE
    benchmark.extra_info["total_states"] = sum(r.states for _, r in rows)
    lines = [
        "",
        f"E4b — N=3, {len(rows)} canonical wiring classes"
        f" (budget {'unbounded' if E4_BUDGET is None else E4_BUDGET}"
        f" states/class):",
    ]
    for wiring, result in rows:
        scope = "exhaustive" if result.complete else "bounded"
        lines.append(
            f"  {wiring}: {result.states} states ({scope}),"
            f" {result.transitions} transitions, 0 violations"
        )
    emit(*lines)


def test_e4_n3_statistical(benchmark):
    violations = benchmark(lambda: check_n3_statistical(SEEDS * 5))
    assert violations == 0
    benchmark.extra_info["violations"] = violations
    emit(
        "",
        f"E4c — N=3 statistical: {SEEDS * 5} full random-schedule"
        f" executions, {violations} violations",
    )
