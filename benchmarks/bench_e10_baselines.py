"""E10 — the price of anonymity: step-complexity comparison.

Compares per-processor step counts (to snapshot-output) across the
model hierarchy the paper's related work spans:

- non-anonymous, single-writer memory: lock-free double collect and
  Afek-style wait-free snapshot;
- anonymous processors, *named* memory: Guerraoui–Ruppert-style
  snapshot with a weak counter;
- fully anonymous: the paper's algorithm (Figure 3), and the naive
  (unsound!) double-collect rule as the cheap-but-wrong reference.

Expected shape: each anonymity step costs more; the fully-anonymous
sound algorithm is the most expensive; the naive fully-anonymous rule
is cheap but refuted by E2 (its row is annotated accordingly).
"""

import random
import statistics

from repro.baselines import (
    NaiveDoubleCollectMachine,
    afek_style_snapshot_process,
    gr_snapshot_process,
    lock_free_snapshot_process,
)
from repro.memory import AnonymousMemory, WiringAssignment
from repro.sim import (
    GeneratorProcess,
    MachineProcess,
    RandomScheduler,
    Runner,
)
from repro.sim.machine import RandomPolicy

from _bench_utils import SEEDS, emit

N = 4


def mean_steps_generator(factory, n, seeds, extra_registers=0):
    samples = []
    for seed in seeds:
        rng = random.Random(seed)
        wiring = WiringAssignment.identity(n, n + extra_registers)
        memory = AnonymousMemory(wiring, None if extra_registers == 0 else 0)
        processes = [
            GeneratorProcess(pid, factory(n, pid, pid + 1), pid + 1)
            for pid in range(n)
        ]
        result = Runner(memory, processes, RandomScheduler(rng)).run(10 ** 6)
        assert result.all_terminated
        samples.extend(result.trace.step_counts().values())
    return statistics.mean(samples), max(samples)


def mean_steps_machine(machine_factory, n, seeds):
    samples = []
    for seed in seeds:
        rng = random.Random(seed)
        machine = machine_factory()
        wiring = WiringAssignment.random(n, n, rng)
        memory = AnonymousMemory(wiring, machine.register_initial_value())
        processes = [
            MachineProcess(pid, machine, pid + 1, RandomPolicy(rng))
            for pid in range(n)
        ]
        result = Runner(memory, processes, RandomScheduler(rng)).run(10 ** 6)
        assert result.all_terminated
        samples.extend(result.trace.step_counts().values())
    return statistics.mean(samples), max(samples)


def compare():
    from repro.core import SnapshotMachine

    seeds = list(range(SEEDS))
    rows = {}
    rows["double-collect (named, non-anon)"] = mean_steps_generator(
        lock_free_snapshot_process, N, seeds
    )
    rows["afek-helping (named, non-anon, wait-free)"] = mean_steps_generator(
        afek_style_snapshot_process, N, seeds
    )
    rows["guerraoui-ruppert (anon procs, named mem)"] = mean_steps_generator(
        lambda n, pid, value: gr_snapshot_process(n, 64, pid, value),
        N, seeds, extra_registers=64,
    )
    rows["naive double-collect (fully anon, UNSOUND)"] = mean_steps_machine(
        lambda: NaiveDoubleCollectMachine(N), N, seeds
    )
    rows["paper fig.3 (fully anon, wait-free)"] = mean_steps_machine(
        lambda: SnapshotMachine(N), N, seeds
    )
    return rows


def test_e10_baseline_comparison(benchmark):
    rows = benchmark(compare)

    sound_anon = rows["paper fig.3 (fully anon, wait-free)"][0]
    named = rows["double-collect (named, non-anon)"][0]
    naive = rows["naive double-collect (fully anon, UNSOUND)"][0]
    # Shape: full anonymity costs more than the named-memory baselines,
    # and the unsound rule undercuts the sound one.
    assert sound_anon > named
    assert naive < sound_anon

    benchmark.extra_info["mean_steps"] = {
        name: round(mean, 1) for name, (mean, _) in rows.items()
    }
    lines = [
        "",
        f"E10 — snapshot step complexity, N={N}, {SEEDS} seeds:",
        f"  {'algorithm':<45} {'mean steps/proc':>16} {'max':>7}",
    ]
    for name, (mean, peak) in rows.items():
        lines.append(f"  {name:<45} {mean:>16.1f} {peak:>7}")
    lines.append(
        "  (each anonymity level costs steps; the naive fully-anonymous"
        " rule is cheaper than fig.3 but refuted by E2)"
    )
    emit(*lines)
