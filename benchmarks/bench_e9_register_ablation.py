"""E9 — register-count ablation: N is exactly the threshold.

The paper: every solution uses only N registers, and §2.1 shows fewer
than N is impossible.  The ablation runs the snapshot algorithm with
M ∈ {N-1, N, N+2, 2N} registers:

- M >= N: always terminates, always valid (safety margin is free);
- M = N-1: the covering adversary produces a concrete snapshot-task
  violation (containment broken), realizing the lower bound.
"""


from repro.api import run_snapshot
from repro.core import SnapshotMachine
from repro.core.views import all_comparable
from repro.memory import AnonymousMemory
from repro.sim import MachineProcess, Runner
from repro.sim.adversaries import covering_wiring
from repro.sim.machine import FIRST_ENABLED

from _bench_utils import SEEDS, emit


def sweep_safe_regimes(n=4):
    rows = []
    for extra in (0, 2, n):  # M = N, N+2, 2N
        m = n + extra
        terminated = 0
        violations = 0
        for seed in range(SEEDS):
            result = run_snapshot(
                list(range(1, n + 1)), seed=seed * 7 + m, n_registers=m
            )
            if result.all_terminated:
                terminated += 1
            ok = all_comparable(result.outputs.values()) and all(
                (pid + 1) in out for pid, out in result.outputs.items()
            )
            if not ok:
                violations += 1
        rows.append((m, terminated, SEEDS, violations))
    return rows


def below_threshold_violation(n=4):
    """The §2.1 covering execution as a snapshot-task violation."""
    machine = SnapshotMachine(n, n_registers=n - 1)
    wiring = covering_wiring(n, n - 1)
    memory = AnonymousMemory(wiring, machine.register_initial_value())
    processes = [
        MachineProcess(pid, machine, pid + 1, FIRST_ENABLED)
        for pid in range(n)
    ]
    runner = Runner(memory, processes, _Manual())
    # p runs solo to completion; the others are poised on their covering
    # first writes.
    while processes[0].status.value == "running":
        runner.step_process(0)
    # The covering writes land, erasing p; then Q runs fairly.
    for pid in range(1, n):
        runner.step_process(pid)
    for _ in range(500_000):
        enabled = [p.pid for p in processes[1:] if p.status.value == "running"]
        if not enabled:
            break
        for pid in enabled:
            runner.step_process(pid)
    outputs = {p.pid: p.output for p in processes if p.output is not None}
    return outputs


class _Manual:
    def choose(self, step_index, enabled):
        return None


def test_e9_register_ablation(benchmark):
    def experiment():
        safe = sweep_safe_regimes()
        outputs = below_threshold_violation()
        return safe, outputs

    safe, outputs = benchmark(experiment)

    for m, terminated, runs, violations in safe:
        assert terminated == runs
        assert violations == 0
    # Below threshold: p output {1} while nobody else ever saw 1.
    assert outputs[0] == frozenset({1})
    incomparable = any(
        not (outputs[0] <= outputs[q] or outputs[q] <= outputs[0])
        for q in outputs
        if q != 0
    )
    assert incomparable, outputs

    benchmark.extra_info["safe_rows"] = [
        {"registers": m, "terminated": t, "violations": v}
        for m, t, _, v in safe
    ]
    lines = [
        "",
        "E9 — register ablation (N=4 processors):",
        f"  {'registers M':>12} {'runs':>5} {'terminated':>11}"
        f" {'violations':>11}",
    ]
    for m, terminated, runs, violations in safe:
        lines.append(
            f"  {m:>12} {runs:>5} {terminated:>11} {violations:>11}"
        )
    lines.append(
        f"  {3:>12} {'1 (adversarial)':>16}  -> containment VIOLATED:"
        f" p output {sorted(outputs[0])}, others"
        f" {[sorted(outputs[q]) for q in sorted(outputs) if q != 0]}"
    )
    lines.append("  (N registers suffice; N-1 provably break — §2.1)")
    emit(*lines)
