"""E7 — adaptive renaming: the M(M+1)/2 bound, adaptivity, group safety.

Sweeps group structures and seeds; regenerates the max-name-vs-bound
table the paper's Section 6 implies: names are unique across groups,
within 1..M(M+1)/2 for M *participating* groups (adaptive: independent
of N), and same-group sharing is allowed.
"""

import random
from collections import defaultdict

from repro.api import run_renaming
from repro.core.renaming import renaming_bound
from repro.tasks import AdaptiveRenamingTask, check_group_solution

from _bench_utils import SEEDS, emit


def sweep():
    rng = random.Random(0xE7)
    by_groups = defaultdict(lambda: {"runs": 0, "max_name": 0,
                                     "cross_collisions": 0,
                                     "group_violations": 0,
                                     "shared_within_group": 0})
    for _ in range(SEEDS * 4):
        n = rng.randint(2, 7)
        n_groups = rng.randint(1, min(4, n))
        group_pool = list(range(1, n_groups + 1))
        group_ids = [rng.choice(group_pool) for _ in range(n)]
        # ensure every group participates so M is what we think it is
        for index, gid in enumerate(group_pool):
            if index < n:
                group_ids[index] = gid
        m = len(set(group_ids))
        result = run_renaming(group_ids, seed=rng.randrange(2**32))
        names = result.outputs
        cell = by_groups[m]
        cell["runs"] += 1
        cell["max_name"] = max(cell["max_name"], max(names.values()))
        for p in range(n):
            for q in range(p + 1, n):
                if group_ids[p] != group_ids[q] and names[p] == names[q]:
                    cell["cross_collisions"] += 1
                if group_ids[p] == group_ids[q] and names[p] == names[q]:
                    cell["shared_within_group"] += 1
        inputs = {pid: group_ids[pid] for pid in range(n)}
        check = check_group_solution(AdaptiveRenamingTask(), inputs, names)
        if not check.valid:
            cell["group_violations"] += 1
    return dict(by_groups)


def test_e7_renaming_bound(benchmark):
    by_groups = benchmark(sweep)

    for m, cell in by_groups.items():
        assert cell["cross_collisions"] == 0
        assert cell["group_violations"] == 0
        assert cell["max_name"] <= renaming_bound(m)

    benchmark.extra_info["rows"] = {
        str(m): cell["max_name"] for m, cell in by_groups.items()
    }
    lines = [
        "",
        "E7 — adaptive renaming sweep:",
        f"  {'groups M':>9} {'runs':>5} {'max name':>9}"
        f" {'bound M(M+1)/2':>15} {'cross-group collisions':>23}"
        f" {'in-group shares':>16}",
    ]
    for m in sorted(by_groups):
        cell = by_groups[m]
        lines.append(
            f"  {m:>9} {cell['runs']:>5} {cell['max_name']:>9}"
            f" {renaming_bound(m):>15} {cell['cross_collisions']:>23}"
            f" {cell['shared_within_group']:>16}"
        )
    lines.append("  (max name <= bound in every row; adaptivity: the bound"
                 " tracks M, not the processor count)")
    emit(*lines)
