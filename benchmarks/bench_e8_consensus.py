"""E8 — obstruction-free consensus: agreement, solo latency, livelock.

Three series:

- agreement/validity over randomized contended executions (safety);
- solo decision latency vs N (obstruction-freedom is about solo runs:
  the latency follows the long-lived snapshot's solo climb, times the
  two-timestamp lead the Chandra race requires);
- non-wait-freedom, certified by exhaustively sweeping the undecided
  region of the 2-processor state graph: the frontier never dies, so
  undecided executions of unbounded length exist.  (Notably, simple
  adversaries — lockstep, one-step decision avoidance — fail to exhibit
  the livelock: the deterministic tie-break corners them into a
  decision.  The sweep is the honest certificate.)
"""

import random

from repro.api import build_runner, run_consensus
from repro.core import ConsensusMachine
from repro.memory import WiringAssignment
from repro.sim import SoloScheduler


from _bench_utils import SEEDS, emit


def contended_sweep(runs):
    decided = 0
    agreement_violations = 0
    validity_violations = 0
    rng = random.Random(0xE8)
    for _ in range(runs):
        n = rng.randint(2, 4)
        proposals = [rng.choice(["a", "b"]) for _ in range(n)]
        result = run_consensus(
            proposals, seed=rng.randrange(2**32), max_steps=3_000_000
        )
        values = set(result.outputs.values())
        if values:
            decided += 1
            if len(values) > 1:
                agreement_violations += 1
            if not values <= set(proposals):
                validity_violations += 1
    return decided, agreement_violations, validity_violations, runs


def solo_latency():
    rows = []
    for n in (2, 3, 4, 5, 6):
        machine = ConsensusMachine(n)
        runner = build_runner(
            machine, [f"v{i}" for i in range(n)], seed=None,
            wiring=WiringAssignment.identity(n, n),
            scheduler=SoloScheduler(0),
        )
        result = runner.run(5_000_000)
        assert result.outputs.get(0) == "v0"
        rows.append((n, result.trace.step_counts()[0]))
    return rows


def undecided_region_certificate(depth=170):
    """Certify non-wait-freedom: BFS of the undecided region.

    Naive livelock witnesses fail here — lockstep schedules and 1-step
    decision-avoiding adversaries get cornered and a decision happens
    (a notable reproduction finding in itself).  The rigorous route:
    exhaustively sweep the region of reachable undecided states; a
    frontier that survives every explored depth means undecided
    executions of unbounded length exist (König's lemma then yields the
    infinite one, matching the consensus-number-1 impossibility).
    """
    from repro.analysis.consensus_livelock import analyze_undecided_region
    from repro.checker import SystemSpec

    machine = ConsensusMachine(2)
    spec = SystemSpec(
        machine, ["v0", "v1"], WiringAssignment.identity(2, 2)
    )
    return analyze_undecided_region(spec, max_depth=depth)


def test_e8_agreement_under_contention(benchmark):
    decided, bad_agreement, bad_validity, runs = benchmark(
        lambda: contended_sweep(SEEDS * 3)
    )
    assert bad_agreement == 0
    assert bad_validity == 0
    assert decided > 0
    benchmark.extra_info["decided_runs"] = decided
    benchmark.extra_info["total_runs"] = runs
    emit(
        "",
        f"E8a — contended consensus: {runs} runs, {decided} decided,"
        f" 0 agreement violations, 0 validity violations",
    )


def test_e8_solo_decision_latency(benchmark):
    rows = benchmark(solo_latency)
    # Latency grows with N (the solo snapshot climb is Θ(N^3)); assert
    # monotone growth, the shape that matters.
    latencies = [steps for _, steps in rows]
    assert all(a < b for a, b in zip(latencies, latencies[1:]))
    benchmark.extra_info["latency_by_n"] = dict(rows)
    lines = ["", "E8b — solo decision latency (obstruction-freedom):",
             f"  {'N':>3} {'solo steps to decide':>21}"]
    for n, steps in rows:
        lines.append(f"  {n:>3} {steps:>21}")
    emit(*lines)


def test_e8_not_wait_free(benchmark):
    certificate = benchmark.pedantic(
        undecided_region_certificate, rounds=1, iterations=1
    )
    assert certificate.unbounded_prefixes
    benchmark.extra_info["depth"] = certificate.depth
    benchmark.extra_info["states_seen"] = certificate.states_seen
    benchmark.extra_info["observed_period"] = certificate.observed_period
    tail = certificate.frontier_sizes[-6:]
    emit(
        "",
        "E8c — consensus is not wait-free (undecided-region sweep):",
        f"  frontier non-empty at every depth up to"
        f" {certificate.depth} ({certificate.states_seen} undecided"
        f" states seen); tail frontier sizes {tail}",
        f"  frontier-size period observed: {certificate.observed_period}"
        f" (the race renews itself forever with growing timestamps)",
        "  (naive livelock witnesses fail: lockstep and 1-step-avoiding"
        " adversaries get cornered into deciding — the infinite"
        " undecided execution needs unbounded-lookahead steering)",
    )
