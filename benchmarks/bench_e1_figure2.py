"""E1 — Figure 2: the pathological infinite execution, regenerated.

Regenerates the paper's 13-row table (register contents and views after
each row), asserts cell-for-cell equality with the published figure, and
certifies the rows 5-13 repetition by lasso detection.
"""

from repro.analysis import stable_view_graph_from_lasso
from repro.core.views import view
from repro.sim.scripted import (
    FIGURE2_EXPECTED_ROWS,
    build_figure2_runner,
    figure2_observed_rows,
    format_figure2_table,
)

from _bench_utils import emit


def regenerate_figure2():
    rows = figure2_observed_rows()
    runner = build_figure2_runner(detect_lasso=True)
    result = runner.run(100_000)
    graph = stable_view_graph_from_lasso(result)
    return rows, result, graph


def test_e1_figure2_table(benchmark):
    rows, result, graph = benchmark(regenerate_figure2)

    # Cell-for-cell equality with the paper's table.
    for got, want in zip(rows, FIGURE2_EXPECTED_ROWS):
        assert got.registers == want.registers, f"row {got.index}"
        assert got.views == want.views, f"row {got.index}"
    # Rows 5-13 (36 steps) repeat forever; all three processors live.
    assert result.lasso is not None
    assert result.lasso.cycle_length == 36
    assert result.lasso.cycle_pids == (0, 1, 2)
    # Stable views exactly as in Section 4.3's discussion of the figure.
    assert graph.vertices == {view(1), view(1, 2), view(1, 3)}
    assert graph.sources() == [view(1)]

    benchmark.extra_info["rows_matched"] = len(rows)
    benchmark.extra_info["lasso_cycle_steps"] = result.lasso.cycle_length
    benchmark.extra_info["stable_views"] = [
        sorted(v) for v in sorted(graph.vertices, key=len)
    ]
    emit("", "E1 — Figure 2 (reproduced):", format_figure2_table(rows),
         f"lasso: rows 5-13 repeat every {result.lasso.cycle_length} steps",
         f"stable-view graph: {graph.describe()}")
