"""E5 — claim B investigated: snapshot task outputs vs memory contents.

The paper (§8): TLC confirms the Figure 3 algorithm does not provide
atomic memory snapshots — some executions return a set of inputs the
memory never contained exactly.  Our reproduction, formalizing "the
memory contains the set of inputs I" as "the union of the register
views equals I", finds a sharper picture (full discussion in
EXPERIMENTS.md):

- **E5a** — for N=2 the exhaustive history-augmented search proves the
  *opposite* direction: every output always matched an earlier union.
- **E5b** — for N=3 the sound abstraction of
  :mod:`repro.checker.claim_b` (token-writer quotient + union/
  contamination pruning) *exhausts* the entire candidate-counterexample
  region with zero hits: under this formalization the whole-execution
  claim does not hold for our implementation.  Default: representative
  wirings; ``REPRO_E5_FULL=1`` sweeps all 36 (≈8 minutes).
- **E5c** — the linearizability form of the claim is true and
  constructive: an execution whose witness outputs {1,2} while the
  memory union is {1,2,3} at every instant of the witness's final scan
  (the covering choreography of
  :mod:`repro.sim.non_linearizable`), re-verified from the trace.
"""

import os

from repro.checker import SystemSpec
from repro.checker.atomicity import find_non_atomic_execution
from repro.checker.claim_b import exhaustive_claim_b_search, sweep_all_wirings
from repro.core import SnapshotMachine
from repro.memory.wiring import enumerate_wiring_assignments
from repro.sim.non_linearizable import build_non_linearizable_scan_demo

from _bench_utils import E5_JOBS, emit

_FULL = os.environ.get("REPRO_E5_FULL") == "1"
_REPRESENTATIVE_WIRINGS = (
    ((0, 1, 2), (0, 1, 2), (0, 1, 2)),
    ((0, 1, 2), (1, 2, 0), (2, 0, 1)),
    ((0, 1, 2), (0, 2, 1), (1, 0, 2)),
)


def test_e5a_n2_outputs_always_matched(benchmark):
    def search_all():
        results = []
        for wiring in enumerate_wiring_assignments(2, 2):
            spec = SystemSpec(SnapshotMachine(2), [1, 2], wiring)
            results.append(
                (wiring.permutations(), *find_non_atomic_execution(spec))
            )
        return results

    results = benchmark(search_all)
    for _, counterexample, states, complete in results:
        assert complete and counterexample is None
    benchmark.extra_info["states_per_wiring"] = results[0][2]
    emit(
        "",
        "E5a — N=2 exhaustive: every snapshot output matched a previous"
        " memory union",
        *(
            f"  wiring {perms}: {states} augmented states, complete,"
            f" no counterexample"
            for perms, _, states, _ in results
        ),
    )


def test_e5b_n3_candidate_region_exhausted(benchmark):
    def sweep(jobs=E5_JOBS):
        if _FULL:
            return sweep_all_wirings(jobs=jobs)
        return [
            exhaustive_claim_b_search(wiring)
            for wiring in _REPRESENTATIVE_WIRINGS
        ]

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    for result in results:
        assert result.exhausted, "budget too small to certify"
        assert not result.found
    benchmark.extra_info["wirings_checked"] = len(results)
    benchmark.extra_info["total_states"] = sum(r.states for r in results)
    emit(
        "",
        f"E5b — N=3 abstracted candidate region"
        f" ({'all 36 wirings' if _FULL else '3 representative wirings'};"
        f" REPRO_E5_FULL=1 for the full sweep):",
        *(
            f"  wiring {result.wiring}: region EXHAUSTED at"
            f" {result.states} states — no counterexample"
            for result in results
        ),
        "  => under the union-of-views formalization, no 3-processor"
        " execution outputs a set the memory avoided throughout"
        " (see EXPERIMENTS.md for the discrepancy discussion)",
    )


def test_e5c_final_scan_not_linearizable(benchmark):
    demo = benchmark(build_non_linearizable_scan_demo)
    assert demo.output == frozenset({1, 2})
    assert demo.never_matches
    benchmark.extra_info["output"] = sorted(demo.output)
    benchmark.extra_info["unions_during_final_scan"] = [
        sorted(union) for union in demo.unions_during_final_scan
    ]
    emit(
        "",
        "E5c — constructive: the final scan is not an atomic collect",
        f"  witness outputs {sorted(demo.output)} while the memory union"
        f" is {sorted(demo.unions_during_final_scan[0])} at every instant"
        f" of its final scan ({len(demo.unions_during_final_scan)}"
        f" sampled instants)",
        "  (covering choreography: a '3-token' is always parked in some"
        " register, erased just ahead of each read by a poised write)",
    )
