"""E6 — the Section 2.1 lower bound: coverings erase information.

Runs the covering-adversary construction against the snapshot algorithm
for a range of system sizes with N-1 registers, asserting complete
erasure and twin-execution indistinguishability each time, and reports
the erasure table.
"""

from repro.core import SnapshotMachine
from repro.sim.adversaries import demonstrate_erasure

from _bench_utils import emit


def run_sweep(sizes):
    rows = []
    for n in sizes:
        demo = demonstrate_erasure(
            lambda n=n: SnapshotMachine(n, n_registers=n - 1),
            inputs=list(range(1, n + 1)),
            alternate_input=999,
        )
        rows.append((n, demo))
    return rows


def test_e6_covering_erasure(benchmark):
    rows = benchmark(lambda: run_sweep([2, 3, 4, 6, 8]))

    for n, demo in rows:
        # p terminated solo with different outputs in the twin runs...
        assert demo.first.solo_output == frozenset({1})
        assert demo.second.solo_output == frozenset({999})
        # ...yet after the poised writes, Q cannot tell the runs apart.
        assert demo.erasure_complete
        # p's information was in memory before, and gone after.
        assert any(1 in r.view for r in demo.first.memory_after_solo)
        assert all(1 not in r.view for r in demo.first.memory_after_covering)

    benchmark.extra_info["sizes"] = [n for n, _ in rows]
    benchmark.extra_info["erasure_complete"] = all(
        demo.erasure_complete for _, demo in rows
    )
    lines = [
        "",
        "E6 — §2.1 lower bound (N processors, N-1 registers):",
        f"  {'N':>3} {'regs':>5} {'covered':>8} {'p erased':>9}"
        f" {'twin-indistinguishable':>23}",
    ]
    for n, demo in rows:
        lines.append(
            f"  {n:>3} {n - 1:>5} {len(demo.first.covered_registers):>8}"
            f" {'yes':>9} {'yes' if demo.erasure_complete else 'NO':>23}"
        )
    emit(*lines)
