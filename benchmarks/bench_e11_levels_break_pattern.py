"""E11 — the levels break the Figure 2 pattern (Section 5.1).

"In the example of Figure 2, p1 always reads {1} — the source stable
view — from itself; thus, if it tracked its level as above, p1 would
increase its level at each read and eventually terminate returning
snapshot {1}; this would break the infinitely repeating pattern."

Reproduction: run the *level-tracking* snapshot algorithm (Figure 3)
under the Figure 2 wiring and churn pattern.  p1 terminates first with
exactly {1}; the pattern collapses, every processor terminates, and all
outputs are containment-related — the write-scan loop under the same
schedule cycles forever (E1).
"""

from repro.core import SnapshotMachine
from repro.core.views import all_comparable, view
from repro.memory import AnonymousMemory
from repro.sim import MachineProcess, Runner
from repro.sim.machine import FIRST_ENABLED
from repro.sim.scripted import FIGURE2_INPUTS, figure2_wiring

from _bench_utils import emit

#: The Figure 2 churn pattern, as a periodic pid sequence: each block is
#: one write + full scan of one processor; rows 1-4 then 5-13 cycling.
_STEPS = 1 + 3


def figure2_periodic_pattern():
    prefix = [0] * (2 * _STEPS)  # row 1: p1 writes twice, scanning between
    for pid in (1, 2, 0):  # rows 2-4
        prefix += [pid] * _STEPS
    cycle = []
    for pid in (1, 2, 0) * 3:  # rows 5-13
        cycle += [pid] * _STEPS
    return prefix, cycle


class _PrefixThenCycle:
    """Play the prefix once, then repeat the cycle, skipping done pids.

    This is exactly Figure 2's schedule shape (rows 1-4 once, rows 5-13
    forever); :class:`PeriodicScheduler` would replay the prefix too.
    """

    def __init__(self, prefix, cycle):
        self._prefix = list(prefix)
        self._cycle = list(cycle)
        self._cursor = 0

    def choose(self, step_index, enabled):
        total = len(self._prefix) + len(self._cycle)
        for _ in range(total):
            if self._cursor < len(self._prefix):
                pick = self._prefix[self._cursor]
            else:
                offset = (self._cursor - len(self._prefix)) % len(self._cycle)
                pick = self._cycle[offset]
            self._cursor += 1
            if pick in enabled:
                return pick
        return None


def run_levels_under_figure2_churn():
    machine = SnapshotMachine(3)
    wiring = figure2_wiring(3)
    memory = AnonymousMemory(wiring, machine.register_initial_value())
    processes = [
        MachineProcess(pid, machine, FIGURE2_INPUTS[pid], FIRST_ENABLED)
        for pid in range(3)
    ]
    prefix, cycle = figure2_periodic_pattern()
    scheduler = _PrefixThenCycle(prefix, cycle)
    runner = Runner(memory, processes, scheduler)
    first_output = None
    for step in range(200_000):
        enabled = runner.enabled_pids()
        if not enabled:
            break
        pick = runner.scheduler.choose(step, enabled)
        if pick is None:
            break
        runner.step_process(pick)
        if first_output is None:
            outputs = {
                p.pid: p.output for p in runner.processes
                if p.output is not None
            }
            if outputs:
                (pid, out), = outputs.items()
                first_output = (pid, out, step + 1)
    return runner.result(), first_output


def test_e11_levels_break_the_pattern(benchmark):
    result, first_output = benchmark(run_levels_under_figure2_churn)

    # p1 (pid 0) terminates first, with exactly {1} — the source view.
    assert first_output is not None
    first_pid, first_view, first_step = first_output
    assert first_pid == 0
    assert first_view == view(1)
    # The pattern collapses: everyone terminates with comparable outputs.
    assert result.all_terminated
    assert all_comparable(result.outputs.values())

    benchmark.extra_info["first_terminator"] = first_pid
    benchmark.extra_info["first_output"] = sorted(first_view)
    benchmark.extra_info["first_step"] = first_step
    benchmark.extra_info["final_outputs"] = {
        str(pid): sorted(out) for pid, out in result.outputs.items()
    }
    emit(
        "",
        "E11 — levels break the Figure 2 pattern:",
        f"  under the same wiring and churn, p1 terminates at step"
        f" {first_step} with snapshot {sorted(first_view)} (the source"
        f" stable view)",
        f"  pattern collapses; final outputs:"
        f" { {pid: sorted(out) for pid, out in sorted(result.outputs.items())} }",
        "  (the plain write-scan loop cycles forever under this schedule"
        " — benchmark E1)",
    )
