"""Shared helpers for the benchmark harness.

Each ``bench_eXX_*`` module regenerates one experiment from DESIGN.md's
index (the paper's figures, mechanically-checked claims, and stated
bounds).  Conventions:

- the timed callable *is* the experiment (workload generation included),
  so `pytest benchmarks/ --benchmark-only` both measures and validates;
- reproduced rows/series are attached to ``benchmark.extra_info`` so
  they appear in the benchmark report, and printed with ``emit`` for
  ``-s`` runs;
- shape assertions (who wins, what breaks, which bound holds) run on
  the result of the final timed round — a benchmark that regenerates the
  wrong table fails loudly rather than reporting a meaningless time.

Environment knobs:

- ``REPRO_BENCH_SEEDS`` (default 20): seeds per statistical sweep;
- ``REPRO_E4_BUDGET`` (default 200000): N=3 states per wiring class;
- ``REPRO_E4_FULL=1``: remove the E4 budget (hours; exhaustive N=3).
"""

from __future__ import annotations

import os

SEEDS = int(os.environ.get("REPRO_BENCH_SEEDS", "20"))
E4_BUDGET = (
    None
    if os.environ.get("REPRO_E4_FULL") == "1"
    else int(os.environ.get("REPRO_E4_BUDGET", "200000"))
)


def emit(*lines: str) -> None:
    """Print reproduction rows (visible with ``pytest -s``)."""
    for line in lines:
        print(line)
