"""Shared helpers for the benchmark harness.

Each ``bench_eXX_*`` module regenerates one experiment from DESIGN.md's
index (the paper's figures, mechanically-checked claims, and stated
bounds).  Conventions:

- the timed callable *is* the experiment (workload generation included),
  so `pytest benchmarks/ --benchmark-only` both measures and validates;
- reproduced rows/series are attached to ``benchmark.extra_info`` so
  they appear in the benchmark report, and printed with ``emit`` for
  ``-s`` runs;
- shape assertions (who wins, what breaks, which bound holds) run on
  the result of the final timed round — a benchmark that regenerates the
  wrong table fails loudly rather than reporting a meaningless time.

Environment knobs:

- ``REPRO_BENCH_SEEDS`` (default 20): seeds per statistical sweep;
- ``REPRO_E4_BUDGET`` (default 200000): N=3 states per wiring class;
- ``REPRO_E4_FULL=1``: remove the E4 budget (hours; exhaustive N=3);
- ``REPRO_E4_JOBS`` (default 1): worker processes for E4's N=3 sweep
  (wiring classes explored in parallel; 1 = serial);
- ``REPRO_E5_JOBS`` (default: ``REPRO_E4_JOBS``): worker processes for
  E5b's claim-B wiring sweep;
- ``REPRO_E4_STORE`` (default ``ram``): visited-set backend for E4's
  N=3 sweep (``ram`` | ``mmap`` | ``spill``; see :mod:`repro.store`) —
  the disk backends make ``REPRO_E4_FULL=1`` runs RAM-bounded;
- ``REPRO_E15_BUDGET`` (default 50000): states per workload in the
  checker-throughput benchmark (E15).

Performance tracking: :func:`write_checker_bench` writes
``BENCH_checker.json`` at the repository root — states/second, peak
RSS, and states explored for the serial and parallel engines on fixed
workloads — so the checker's performance trajectory is comparable
across PRs.  ``benchmarks/bench_e15_checker_throughput.py`` emits it
(both under pytest and standalone: ``python
benchmarks/bench_e15_checker_throughput.py``).
"""

from __future__ import annotations

import json
import os
import platform
import resource
import subprocess
import sys
from pathlib import Path
from typing import Optional

SEEDS = int(os.environ.get("REPRO_BENCH_SEEDS", "20"))
E4_BUDGET = (
    None
    if os.environ.get("REPRO_E4_FULL") == "1"
    else int(os.environ.get("REPRO_E4_BUDGET", "200000"))
)
E4_JOBS = int(os.environ.get("REPRO_E4_JOBS", "1"))
E4_STORE = os.environ.get("REPRO_E4_STORE", "ram")
E5_JOBS = int(os.environ.get("REPRO_E5_JOBS", str(E4_JOBS)))
E15_BUDGET = int(os.environ.get("REPRO_E15_BUDGET", "50000"))

#: Default location of the checker performance-trajectory file.
BENCH_CHECKER_PATH = Path(__file__).resolve().parent.parent / "BENCH_checker.json"


def emit(*lines: str) -> None:
    """Print reproduction rows (visible with ``pytest -s``)."""
    for line in lines:
        print(line)


def peak_rss_bytes(children: bool = False) -> int:
    """High-water resident set size of this process (or its children).

    ``ru_maxrss`` is kilobytes on Linux and bytes on macOS; normalize
    to bytes.  Monotone over the process lifetime — for per-workload
    numbers run the workload in a fresh subprocess (see
    ``bench_e15_checker_throughput``).
    """
    who = resource.RUSAGE_CHILDREN if children else resource.RUSAGE_SELF
    raw = resource.getrusage(who).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - linux container
        return raw
    return raw * 1024


def git_sha() -> Optional[str]:
    """Short SHA of the checked-out commit, or None outside a repo."""
    try:
        completed = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=Path(__file__).resolve().parent,
            capture_output=True, text=True, timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):  # pragma: no cover
        return None
    sha = completed.stdout.strip()
    return sha if completed.returncode == 0 and sha else None


def _headline_states_per_s(document: dict) -> Optional[int]:
    """The history headline: best single-engine states/s on record.

    Prefers the kernel trend lines (``native``, then ``batch``) on the
    fixed identity-class workload; falls back to the serial sweep when
    neither section exists (e.g. numpy-less hosts).
    """
    best: Optional[int] = None
    for section_name, run_key in (("native", "native"), ("batch", "batch")):
        section = document.get(section_name)
        if not isinstance(section, dict):
            continue
        for mode in (
            "plain", "fingerprint", "symmetry", "symmetry_fingerprint"
        ):
            entry = section.get(mode)
            if not isinstance(entry, dict):
                continue
            run = entry.get(run_key)
            if isinstance(run, dict) and run.get("states_per_s"):
                value = int(run["states_per_s"])
                if best is None or value > best:
                    best = value
    if best is not None:
        return best
    sweep = document.get("sweep")
    if isinstance(sweep, dict):
        serial = sweep.get("serial")
        if isinstance(serial, dict) and serial.get("states_per_s"):
            return int(serial["states_per_s"])
    return None


def write_checker_bench(payload: dict, path: Optional[Path] = None) -> Path:
    """Write ``BENCH_checker.json``: the cross-PR checker perf record.

    Sections are **merged**, not overwritten: an existing file's
    top-level sections survive unless this run remeasured them, so a
    partial run (e.g. the symmetry sweep alone) never erases the
    throughput/memory record it didn't touch.  Each section written by
    this run is stamped with the current git SHA — a merged file can
    carry sections from different commits, and the stamps say which.
    Host facts (CPU count, Python, platform) are stamped alongside so
    numbers from different runners are never compared blind.

    A top-level ``history`` list accumulates one entry per git SHA —
    the headline states/s after each run (best kernel trend line; see
    :func:`_headline_states_per_s`) — so the checker's perf trajectory
    across PRs is a one-key read.  Re-runs on the same SHA replace
    that SHA's entry rather than appending.
    """
    target = Path(path) if path is not None else BENCH_CHECKER_PATH
    sha = git_sha()
    stamped = {
        key: ({**value, "git_sha": sha} if isinstance(value, dict) else value)
        for key, value in payload.items()
    }
    document = {
        "schema": "repro-checker-bench/1",
        "host": {
            "cpus": os.cpu_count(),
            "python": platform.python_version(),
            "platform": platform.platform(),
        },
    }
    if target.exists():
        try:
            previous = json.loads(target.read_text())
        except (OSError, json.JSONDecodeError):
            previous = {}
        if previous.get("schema") == document["schema"]:
            for key, value in previous.items():
                if key not in ("schema", "host"):
                    document[key] = value
    document.update(stamped)
    history = [
        entry for entry in document.get("history", [])
        if isinstance(entry, dict) and entry.get("git_sha") != sha
    ]
    headline = _headline_states_per_s(document)
    if headline is not None:
        history.append({"git_sha": sha, "states_per_s": headline})
    document["history"] = history
    target.write_text(json.dumps(document, indent=2, sort_keys=False) + "\n")
    return target
