"""E12 — group solvability semantics (Section 3.2's worked example).

Regenerates the paper's example — processors 1..4 in groups A={1},
B={2,3}, C={4} with outputs {A,B,C}, {A,B}, {B,C}, {A,B,C} — and
validates it against Definition 3.4 (legal despite the incomparable
outputs inside group B), plus the refutation when the incomparability
spans two groups.  Also measures the group-checker itself: number of
output samples enumerated as the group structure grows.
"""

import random

from repro.tasks import (
    SnapshotTask,
    check_group_solution,
    groups_from_inputs,
    iter_output_samples,
)

from _bench_utils import emit

PAPER_INPUTS = {1: "A", 2: "B", 3: "B", 4: "C"}
PAPER_OUTPUTS = {
    1: frozenset({"A", "B", "C"}),
    2: frozenset({"A", "B"}),
    3: frozenset({"B", "C"}),
    4: frozenset({"A", "B", "C"}),
}


def checker_workload():
    task = SnapshotTask()
    # 1. The paper's example is a legal group solution.
    legal = check_group_solution(task, PAPER_INPUTS, PAPER_OUTPUTS)
    # 2. Splitting group B refutes it.
    split_inputs = {1: "A", 2: "B", 3: "D", 4: "C"}
    illegal = check_group_solution(task, split_inputs, PAPER_OUTPUTS)
    # 3. Checker scaling: samples enumerated vs group structure.
    rng = random.Random(0xE12)
    scaling = []
    for n_groups, group_size in [(2, 2), (3, 2), (3, 3), (4, 2)]:
        inputs = {}
        outputs = {}
        pid = 0
        universe = [f"g{j}" for j in range(n_groups)]
        for j in range(n_groups):
            for _ in range(group_size):
                inputs[pid] = f"g{j}"
                # nested outputs: a random prefix of the group chain
                k = rng.randint(j + 1, n_groups)
                outputs[pid] = frozenset(universe[:k]) | {f"g{j}"}
                pid += 1
        samples = sum(
            1 for _ in iter_output_samples(groups_from_inputs(inputs), outputs)
        )
        result = check_group_solution(SnapshotTask(), inputs, outputs)
        scaling.append((n_groups, group_size, samples, result.valid))
    return legal, illegal, scaling


def test_e12_group_semantics(benchmark):
    legal, illegal, scaling = benchmark(checker_workload)

    assert legal.valid, legal.reason
    assert not illegal.valid
    assert illegal.counterexample is not None

    benchmark.extra_info["paper_example_legal"] = legal.valid
    benchmark.extra_info["split_group_refuted"] = not illegal.valid
    lines = [
        "",
        "E12 — group solvability (Definition 3.4):",
        "  paper's 4-processor example (B = {2,3} returns incomparable"
        " {A,B} / {B,C}):",
        f"    legal group solution: {legal.valid}"
        f" ({legal.samples_checked} output samples checked)",
        "  same outputs with processor 3 moved to its own group:",
        f"    refuted: {not illegal.valid} — {illegal.reason}",
        "  checker scaling (samples enumerated):",
        f"  {'groups':>7} {'members':>8} {'samples':>8} {'valid':>6}",
    ]
    for n_groups, size, samples, valid in scaling:
        lines.append(f"  {n_groups:>7} {size:>8} {samples:>8} {str(valid):>6}")
    emit(*lines)
