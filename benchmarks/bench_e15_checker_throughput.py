"""E15 — checker throughput: the perf trajectory of the TLC stand-in.

Not a paper experiment: this benchmark tracks the *checker itself* —
the engine every mechanically-checked claim (E4/E5) rides on — so that
performance changes across PRs are measured, not guessed.  Fixed
workloads, four axes:

- **throughput**: the E4-style N=3 sweep (all 10 canonical wiring
  classes, fixed per-class state budget) serial vs ``jobs=2`` and
  ``jobs=4`` class-parallel, plus the frontier-sharded engine on a
  single class; on a single-CPU host the multi-job variants are
  skipped (``{"skipped": "single-cpu host"}`` stubs) — capped workers
  are pure fork/IPC overhead and time nothing real;
- **memory**: peak-RSS deltas of the object-encoded explorer vs the
  64-bit fingerprint modes on the N=3 reference workload (each run in
  a fresh subprocess so high-water marks don't bleed between
  workloads);
- **symmetry**: the quotient construction on the flagship wiring
  classes and the whole sweep — reduction ratio (concrete states
  covered per state explored) and *net* speedup (effective covered
  states/s, canonicalization cost included, vs the unreduced twin);
- **store**: the reference workload against every fingerprint-store
  backend (RAM set, mmap open-addressing table, spill-to-disk sorted
  runs) — states/s, peak RSS, and bytes on disk per backend, plus a
  ``spill_memcap`` entry that runs the spill backend under a hard 200
  MB ``mem_cap`` (``--spill-states``, default 5M standalone) and
  records whether the workload's RSS delta stayed under the cap; a
  ``spill_parallel_merge`` twin runs the same workload with
  ``merge_jobs=2`` and records merge wall time next to the serial
  entry's;
- **por**: ample-set partial-order reduction on the exhaustive N=2
  class sweep in all four ``por x symmetry`` combinations — verdict/
  violation-set identity and the transitions cut (the acceptance bar:
  >= 2x with ``por+symmetry``);
- **batch**: the level-batched numpy kernel (``--engine batch``) vs
  the scalar loop on the identity class in four modes (plain,
  fingerprint, symmetry, symmetry+fingerprint), each engine pair
  measured adjacently — per-mode speedup plus in-section conformance
  (identical states/transitions/verdict, or the numbers are garbage);
  standalone ``--only-batch`` remeasures just this section;
- **native**: the generated-C level kernel (``--kernel native``) vs its
  numpy twin vs scalar, same identity-class modes, each triple measured
  adjacently — per-mode ``speedup_vs_numpy``/``speedup_vs_scalar`` plus
  field-level conformance; without a compiler the section records
  ``available: false`` and the reason.  Standalone ``--only-native``
  remeasures just this section;
- **batch_por**: the two biggest reductions composed — unreduced vs
  scalar+POR vs batch+POR on the identity class under symmetry, all
  three measured adjacently.  Conformance here is verdict-level (the
  level-synchronous selector picks different-but-sound ample sets, so
  state counts legitimately differ); the bars are >= 2x batch-over-
  scalar states/s and a batch transition cut within 10% of scalar's;
  standalone ``--only-batch-por`` remeasures just this section;
- **service**: the distributed checking service (``repro serve``) — a
  coordinator plus ``k`` localhost socket workers running the
  exhaustive N=2 sweep as one submitted job, against the serial
  engine measured adjacently; records states/s, per-round protocol
  overhead, and per-worker utilization (busy_ms over wall clock, via
  ``aggregate_service_statistics``).  Verdict/count conformance with
  serial is asserted in-section (the non-POR exhaustive configuration
  is partition-invariant, so counts must match bit-for-bit).  The N=2
  state space is small, so this section measures protocol overhead
  honestly rather than showcasing speedup; standalone
  ``--only-service`` remeasures just this section;
- **conformance**: parallel and serial must report identical verdicts
  (and identical states/transitions for the class sweep), and all
  three store backends must report identical states/transitions/
  verdicts — a benchmark that got a different answer fails instead of
  timing garbage.

Every parallel workload records ``jobs_requested`` next to
``jobs_effective`` (requests above ``os.cpu_count()`` are capped).
Results land in ``BENCH_checker.json`` at the repo root (see
``_bench_utils.write_checker_bench``; sections merge across runs, each
stamped with its git SHA).  Standalone use::

    PYTHONPATH=src python benchmarks/bench_e15_checker_throughput.py \
        [--budget N] [--jobs 1 2 4] [--out PATH]

The CI smoke run uses a small ``--budget`` to finish in ~30 seconds.
"""

from __future__ import annotations

import argparse
import multiprocessing
import os
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from _bench_utils import (  # noqa: E402 (needs the sys.path line above)
    E15_BUDGET,
    emit,
    peak_rss_bytes,
    write_checker_bench,
)

#: The wiring class used for single-class (sharded/memory) workloads —
#: class 1 of ``canonical_wiring_classes(3, 3)``, a rotation class with
#: a large reachable graph.
_REFERENCE_CLASS = ((0, 1, 2), (0, 1, 2), (1, 2, 0))


# ----------------------------------------------------------------------
# Workload runners (executed in fresh subprocesses for clean RSS)
# ----------------------------------------------------------------------

def _run_workload(config: dict) -> dict:
    """Execute one workload in-process and report stats."""
    import warnings

    from repro.checker import Explorer, SystemSpec
    from repro.checker.parallel import (
        check_snapshot_classes,
        effective_jobs,
        explore_sharded,
    )
    from repro.checker.properties import SNAPSHOT_SAFETY
    from repro.core import SnapshotMachine
    from repro.memory.wiring import WiringAssignment

    symmetry = config.get("symmetry", False)
    por = config.get("por", False)
    engine = config.get("engine", "scalar")
    kernel = config.get("kernel", "auto")

    store_config = None
    if config.get("store"):
        from repro.store import DEFAULT_MEM_CAP, StoreConfig

        store_config = StoreConfig(
            backend=config["store"],
            mem_cap=config.get("mem_cap", DEFAULT_MEM_CAP),
            merge_jobs=config.get("merge_jobs", 0),
        )

    def _store_detail(results) -> dict:
        if store_config is None:
            return {}
        from repro.analysis.statistics import aggregate_store_statistics

        stats = aggregate_store_statistics(results)
        return {"store": {
            "backend": store_config.backend,
            "merge_jobs": store_config.merge_jobs,
            "entries": stats.entries,
            "file_bytes": stats.file_bytes,
            "spills": stats.spills,
            "merges": stats.merges,
            "merge_wall_ms": stats.merge_wall_ms,
            "disk_probes": stats.disk_probes,
            "bloom_skips": stats.bloom_skips,
        }}

    def _por_detail(results) -> dict:
        if not por:
            return {}
        from repro.analysis.statistics import aggregate_por_statistics

        stats = aggregate_por_statistics(results)
        return {"por_counters": {
            "transitions_pruned": stats.transitions_pruned,
            "ample_states": stats.ample_states,
            "fully_expanded_states": stats.fully_expanded_states,
            "cycle_proviso_expansions": stats.cycle_proviso_expansions,
        }}

    def _collision_detail(states: int) -> dict:
        if not config.get("fingerprint"):
            return {}
        from repro.checker.fingerprint import collision_probability

        return {"collision_probability": collision_probability(states)}

    def _jobs_detail(requested: int) -> dict:
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            return {
                "jobs_requested": requested,
                "jobs_effective": effective_jobs(requested),
            }

    def _symmetry_detail(results) -> dict:
        if not symmetry:
            return {}
        covered = sum(r.covered_states or r.states for r in results)
        explored = sum(r.states for r in results)
        return {
            "covered_states": covered,
            "symmetry_group_orders": [
                r.symmetry_group_order for r in results
            ],
            "reduction_ratio": round(covered / max(1, explored), 3),
        }

    rss_before = peak_rss_bytes()
    start = time.perf_counter()
    kind = config["kind"]
    if kind == "fast_classes":
        rows = check_snapshot_classes(
            config.get("n", 3),
            budget=config["budget"],
            jobs=config["jobs"],
            fingerprint=config.get("fingerprint", False),
            symmetry=symmetry,
            store=store_config,
            por=por,
            engine=engine,
            kernel=kernel,
        )
        states = sum(result.states for _, result in rows)
        transitions = sum(result.transitions for _, result in rows)
        ok = all(result.ok for _, result in rows)
        detail = {"classes": len(rows), **_jobs_detail(config["jobs"]),
                  **_symmetry_detail([result for _, result in rows]),
                  **_store_detail([result for _, result in rows]),
                  **_por_detail([result for _, result in rows]),
                  "violations": sorted(
                      result.violation for _, result in rows
                      if result.violation is not None
                  )}
    elif kind == "fast_sharded":
        result = explore_sharded(
            [1, 2, 3],
            _REFERENCE_CLASS,
            jobs=config["jobs"],
            max_states=config["budget"],
            fingerprint=config.get("fingerprint", False),
            symmetry=symmetry,
            por=por,
            engine=engine,
            kernel=kernel,
        )
        states, transitions, ok = result.states, result.transitions, result.ok
        detail = {"class": list(map(list, _REFERENCE_CLASS)),
                  **_jobs_detail(config["jobs"]),
                  **_symmetry_detail([result]),
                  **_por_detail([result])}
    elif kind == "fast_single":
        from repro.checker.fast_snapshot import FastSnapshotSpec

        wiring = tuple(map(tuple, config.get("class", _REFERENCE_CLASS)))
        result = FastSnapshotSpec([1, 2, 3], wiring).explore(
            max_states=config["budget"],
            fingerprint=config.get("fingerprint", False),
            symmetry=symmetry,
            store=store_config,
            por=por,
            engine=engine,
            kernel=kernel,
        )
        states, transitions, ok = result.states, result.transitions, result.ok
        detail = {"class": list(map(list, wiring)),
                  **_symmetry_detail([result]),
                  **_store_detail([result]),
                  **_por_detail([result])}
    elif kind == "generic":
        spec = SystemSpec(
            SnapshotMachine(3), [1, 2, 3], WiringAssignment.identity(3, 3)
        )
        result = Explorer(
            spec,
            SNAPSHOT_SAFETY,
            max_states=config["budget"],
            fingerprint=config.get("fingerprint", False),
        ).run()
        states, transitions, ok = result.states, result.transitions, result.ok
        detail = {}
    else:  # pragma: no cover - configs are fixed below
        raise ValueError(f"unknown workload kind {kind!r}")
    elapsed = time.perf_counter() - start
    peak = peak_rss_bytes()
    children_peak = peak_rss_bytes(children=True)
    stats = {
        "states": states,
        "transitions": transitions,
        "ok": ok,
        "elapsed_s": round(elapsed, 3),
        "states_per_s": int(states / elapsed) if elapsed > 0 else None,
        "peak_rss_bytes": max(peak, children_peak),
        "workload_rss_bytes": max(peak, children_peak) - rss_before,
        **detail,
        **_collision_detail(states),
    }
    if "covered_states" in stats and elapsed > 0:
        # Effective throughput: concrete states *certified* per second —
        # the number symmetry reduction is supposed to raise.
        stats["covered_states_per_s"] = int(stats["covered_states"] / elapsed)
    return stats


def _subprocess_entry(conn, config: dict) -> None:
    try:
        conn.send(("ok", _run_workload(config)))
    except Exception as exc:  # pragma: no cover - surfaced by driver
        conn.send(("error", f"{type(exc).__name__}: {exc}"))
    finally:
        conn.close()


def measure(config: dict) -> dict:
    """Run one workload in a fresh subprocess (clean RSS high-water).

    Falls back to in-process measurement where processes cannot be
    spawned; the JSON marks which one happened.
    """
    try:
        ctx = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX
        ctx = multiprocessing.get_context()
    try:
        parent_conn, child_conn = ctx.Pipe()
        # Not a daemon: parallel workloads spawn their own worker pools.
        process = ctx.Process(
            target=_subprocess_entry, args=(child_conn, config)
        )
        process.start()
    except OSError:  # pragma: no cover - process-less environments
        return {**_run_workload(config), "isolated_process": False}
    child_conn.close()
    status, payload = parent_conn.recv()
    process.join()
    parent_conn.close()
    if status != "ok":
        raise RuntimeError(f"workload {config} failed: {payload}")
    return {**payload, "isolated_process": True}


# ----------------------------------------------------------------------
# The batch-engine axis (standalone-runnable: --only-batch)
# ----------------------------------------------------------------------

def run_batch_section(budget: int) -> dict:
    """Scalar vs level-batched (numpy) kernel on the identity class.

    Four modes, each engine pair measured back to back — scalar
    timings on shared machines swing tens of percent between minutes,
    so adjacency (not absolute wall clocks) is what makes the per-mode
    ``speedup`` meaningful.  Conformance is asserted inside the
    section: per mode, both engines must report identical states/
    transitions/verdict or the speedup is timing garbage.

    numpy is a soft dependency: without it the section records
    ``available: false`` and nothing else (the scalar engine and every
    other axis are unaffected).
    """
    from repro.checker.batch import HAVE_NUMPY

    identity_class = ((0, 1, 2), (0, 1, 2), (0, 1, 2))
    section = {"available": HAVE_NUMPY, "budget": budget}
    if not HAVE_NUMPY:
        return section
    modes = (
        ("plain", {}),
        ("fingerprint", {"fingerprint": True}),
        ("symmetry", {"symmetry": True}),
        ("symmetry_fingerprint", {"symmetry": True, "fingerprint": True}),
    )
    speedups = {}
    conformant = True
    for label, flags in modes:
        base = {"kind": "fast_single", "budget": budget,
                "class": identity_class, **flags}
        scalar_run = measure({**base, "engine": "scalar"})
        # Pinned to the numpy kernel: this section is the numpy-vs-scalar
        # trend line; the generated-C kernel has its own section (native).
        batch_run = measure({**base, "engine": "batch", "kernel": "numpy"})
        same = (
            (scalar_run["states"], scalar_run["transitions"], scalar_run["ok"])
            == (batch_run["states"], batch_run["transitions"], batch_run["ok"])
        )
        conformant = conformant and same
        speedup = (
            round(batch_run["states_per_s"] / scalar_run["states_per_s"], 2)
            if scalar_run["states_per_s"]
            else None
        )
        speedups[label] = speedup
        section[label] = {
            "scalar": scalar_run,
            "batch": batch_run,
            "conformant": same,
            "speedup": speedup,
        }
    section["conformant"] = conformant
    section["speedups"] = speedups
    real = [s for s in speedups.values() if s is not None]
    section["best_speedup"] = max(real) if real else None
    section["note"] = (
        "speedup = batch states/s over scalar states/s, same workload"
        " measured adjacently; the symmetry modes gain the most (the"
        " scalar canonicalizer is the dominant per-state cost there),"
        " plain BFS the least. Small budgets understate the batch"
        " engine (fixed numpy/table setup amortizes over ~100k+ states)."
    )
    return section


# ----------------------------------------------------------------------
# The composed-reduction axis (standalone-runnable: --only-batch-por)
# ----------------------------------------------------------------------

def run_batch_por_section(budget: int) -> dict:
    """Unreduced vs scalar+POR vs batch+POR on the identity class.

    The tentpole measurement: both big reductions composed.  All three
    runs use symmetry (the flagship configuration) and are measured
    adjacently, so the two ratios that matter are timing-honest:

    - ``speedup``: batch+POR states/s over scalar+POR states/s (the
      acceptance bar is >= 2x at >= 200k-state budgets);
    - ``cut_ratio_batch_vs_scalar``: the batch engine's transition cut
      (unreduced transitions / batch+POR transitions) relative to the
      scalar selector's — the level-synchronous C3 certifies novelty
      against a smaller snapshot (``visited`` at the level boundary
      instead of mid-level), which changes *which* ample sets pass,
      so the cut must stay within 10% of scalar's (>= 0.9) but is not
      expected to be identical.

    Conformance is verdict-level by the same token: all three runs
    must agree on ``ok``; state/transition counts legitimately differ.
    """
    from repro.checker.batch import HAVE_NUMPY

    identity_class = ((0, 1, 2), (0, 1, 2), (0, 1, 2))
    section = {"available": HAVE_NUMPY, "budget": budget}
    if not HAVE_NUMPY:
        return section
    base = {"kind": "fast_single", "budget": budget,
            "class": identity_class, "symmetry": True}
    unreduced = measure({**base, "engine": "scalar"})
    scalar_por = measure({**base, "engine": "scalar", "por": True})
    batch_por = measure(
        {**base, "engine": "batch", "kernel": "numpy", "por": True}
    )
    scalar_cut = round(
        unreduced["transitions"] / max(1, scalar_por["transitions"]), 2
    )
    batch_cut = round(
        unreduced["transitions"] / max(1, batch_por["transitions"]), 2
    )
    section.update({
        "unreduced": unreduced,
        "scalar_por": scalar_por,
        "batch_por": batch_por,
        "conformant": unreduced["ok"] == scalar_por["ok"] == batch_por["ok"],
        "transitions_cut_scalar": scalar_cut,
        "transitions_cut_batch": batch_cut,
        "cut_ratio_batch_vs_scalar": (
            round(batch_cut / scalar_cut, 3) if scalar_cut else None
        ),
        "speedup": (
            round(
                batch_por["states_per_s"] / scalar_por["states_per_s"], 2
            )
            if scalar_por["states_per_s"]
            else None
        ),
        "note": (
            "verdict-level conformance by design: the level-synchronous"
            " selector certifies C3 novelty against the level-boundary"
            " visited set, so its ample choices (and hence state/"
            "transition counts) differ from the scalar selector's while"
            " both remain sound reductions of the same graph. Small"
            " budgets understate the speedup (fixed numpy setup"
            " amortizes over ~100k+ states)."
        ),
    })
    return section


# ----------------------------------------------------------------------
# The native-kernel axis (standalone-runnable: --only-native)
# ----------------------------------------------------------------------

def run_native_section(budget: int) -> dict:
    """Generated-C kernel vs its numpy twin (and scalar) per mode.

    Same identity-class workload and four modes as the ``batch``
    section, with the numpy twin measured *adjacently* to each native
    run — the per-mode ``speedup_vs_numpy`` is the native kernel's
    honest headline, ``speedup_vs_scalar`` the cumulative one.
    Conformance is field-level inside the section: per mode all three
    runs must report identical states/transitions/verdict (kernels are
    bit-identical by contract) or the numbers are garbage.

    The native kernel is a soft dependency: without numpy or a C
    compiler (or with ``REPRO_NATIVE_DISABLE=1``) the section records
    ``available: false`` plus the reason and nothing else.
    """
    from repro.checker.batch import HAVE_NUMPY

    identity_class = ((0, 1, 2), (0, 1, 2), (0, 1, 2))
    section: dict = {"available": False, "budget": budget}
    if not HAVE_NUMPY:
        section["reason"] = "numpy unavailable"
        return section
    from repro.checker.native import find_compiler, native_available

    if not native_available():
        section["reason"] = (
            "no C compiler found (or REPRO_NATIVE_DISABLE=1)"
        )
        return section
    section["available"] = True
    section["compiler"] = find_compiler()
    # Warm the on-disk kernel cache (one source per canonicalizer
    # baking, so both the plain and the symmetry-specialized libraries)
    # before timing: compilation is a first-use-only cost (~2 s) and
    # billing it to the first timed mode would skew small budgets.
    for flags in ({}, {"symmetry": True}):
        measure({"kind": "fast_single", "budget": 1000,
                 "class": identity_class, "engine": "batch",
                 "kernel": "native", **flags})
    modes = (
        ("plain", {}),
        ("fingerprint", {"fingerprint": True}),
        ("symmetry", {"symmetry": True}),
        ("symmetry_fingerprint", {"symmetry": True, "fingerprint": True}),
    )
    speedups = {}
    speedups_scalar = {}
    conformant = True
    for label, flags in modes:
        base = {"kind": "fast_single", "budget": budget,
                "class": identity_class, **flags}
        scalar_run = measure({**base, "engine": "scalar"})
        numpy_run = measure({**base, "engine": "batch", "kernel": "numpy"})
        native_run = measure({**base, "engine": "batch", "kernel": "native"})
        fields = [
            (run["states"], run["transitions"], run["ok"])
            for run in (scalar_run, numpy_run, native_run)
        ]
        same = len(set(fields)) == 1
        conformant = conformant and same
        speedup = (
            round(native_run["states_per_s"] / numpy_run["states_per_s"], 2)
            if numpy_run["states_per_s"]
            else None
        )
        vs_scalar = (
            round(native_run["states_per_s"] / scalar_run["states_per_s"], 2)
            if scalar_run["states_per_s"]
            else None
        )
        speedups[label] = speedup
        speedups_scalar[label] = vs_scalar
        section[label] = {
            "scalar": scalar_run,
            "numpy": numpy_run,
            "native": native_run,
            "conformant": same,
            "speedup_vs_numpy": speedup,
            "speedup_vs_scalar": vs_scalar,
        }
    section["conformant"] = conformant
    section["speedups_vs_numpy"] = speedups
    section["speedups_vs_scalar"] = speedups_scalar
    real = [s for s in speedups.values() if s is not None]
    section["best_speedup_vs_numpy"] = max(real) if real else None
    real_scalar = [s for s in speedups_scalar.values() if s is not None]
    section["best_speedup_vs_scalar"] = (
        max(real_scalar) if real_scalar else None
    )
    section["note"] = (
        "speedup_vs_numpy = native states/s over the numpy batch kernel"
        " on the same workload measured adjacently (the kernels are"
        " field-identical, so this is pure per-state cost); the"
        " generated library is disk-cached, so compile time is excluded"
        " by a warm-up run. Small budgets understate the native kernel"
        " (per-level call overhead amortizes over large frontiers)."
    )
    return section


# ----------------------------------------------------------------------
# The service axis (standalone-runnable: --only-service)
# ----------------------------------------------------------------------

def _service_quiet(line: str) -> None:
    """Spawn-picklable no-op log sink for service workers (a lambda
    would fail to pickle under the spawn start method)."""


def run_service_section(workers: int = 2) -> dict:
    """Coordinator + ``workers`` localhost socket workers vs serial.

    One exhaustive N=2 job (the partition-invariant configuration, so
    the service verdicts and per-class state/transition counts must
    equal the serial engine's bit-for-bit — asserted in-section as
    ``conformant``).  The serial twin is measured adjacently.  Workers
    are separate ``spawn`` processes talking the real wire protocol
    over 127.0.0.1, so ``states_per_s`` here prices the full
    frame-encode/socket/merge round-trip; at N=2 scale that overhead
    dominates and the honest headline is per-worker ``utilization``
    (busy_ms over wall clock), not speedup.
    """
    import tempfile

    from repro.analysis import aggregate_service_statistics
    from repro.checker.batch import HAVE_NUMPY

    engine = "batch" if HAVE_NUMPY else "scalar"
    section: dict = {"workers": workers, "engine": engine}
    serial_run = measure(
        {"kind": "fast_classes", "n": 2, "budget": None, "jobs": 1,
         "engine": engine}
    )
    section["serial"] = serial_run

    from repro.service.coordinator import CoordinatorHandle
    from repro.service.jobs import JobSpec
    from repro.service.transport import ServiceClient
    from repro.service.worker import run_worker

    ctx = multiprocessing.get_context("spawn")
    procs = []
    with tempfile.TemporaryDirectory(prefix="bench-service-") as state_dir:
        handle = CoordinatorHandle(
            Path(state_dir), log=_service_quiet, ping_every_s=0.2
        )
        try:
            host, port = handle.endpoint
            for index in range(workers):
                proc = ctx.Process(
                    target=run_worker,
                    kwargs=dict(host=host, port=port,
                                name=f"bench-w{index}",
                                emit=_service_quiet),
                    daemon=True,
                )
                proc.start()
                procs.append(proc)
            spec = JobSpec(n=2, budget=0, engine=engine,
                           shards=2 * workers)
            start = time.perf_counter()
            with ServiceClient.for_state_dir(Path(state_dir)) as client:
                # Submitting before the whole fleet has joined would
                # hand every shard to the first worker (correct, but it
                # would time a 1-worker run under a k-worker label).
                deadline = time.perf_counter() + 30
                while (len(client.workers()) < workers
                       and time.perf_counter() < deadline):
                    time.sleep(0.05)
                job_id = client.submit(spec)
                record = client.wait(job_id, timeout=600)
                elapsed = time.perf_counter() - start
                # Worker stats reach the coordinator via periodic pings
                # that skip busy workers; right after completion the
                # last pong usually predates the job, so wait for a
                # fresh one before snapshotting utilization.
                deadline = time.perf_counter() + 5
                worker_stats = client.workers()
                while (not any(w.get("rounds") for w in worker_stats)
                       and time.perf_counter() < deadline):
                    time.sleep(0.1)
                    worker_stats = client.workers()
        finally:
            handle.stop()
            for proc in procs:
                proc.join(timeout=10)
                if proc.is_alive():  # pragma: no cover - shutdown raced
                    proc.kill()
                    proc.join()

    rows = [(row["class"], row["result"]) for row in record.rows]
    states = sum(result["states"] for _, result in rows)
    transitions = sum(result["transitions"] for _, result in rows)
    ok = record.state == "done" and all(
        result["violation"] is None for _, result in rows
    )
    stats = aggregate_service_statistics(worker_stats, elapsed)
    conformant = (
        record.state == "done"
        and (states, transitions, ok) == (
            serial_run["states"], serial_run["transitions"],
            serial_run["ok"],
        )
    )
    section["service"] = {
        "states": states,
        "transitions": transitions,
        "ok": ok,
        "classes": len(rows),
        "shards": spec.shards,
        "elapsed_s": round(elapsed, 3),
        "states_per_s": int(states / elapsed) if elapsed > 0 else None,
        "per_worker": [
            {"name": worker.name, "busy_ms": round(worker.busy_ms, 1),
             "rounds": worker.rounds,
             "utilization": round(worker.utilization(elapsed), 3)}
            for worker in stats.workers
        ],
        "mean_utilization": round(stats.mean_utilization, 3),
    }
    section["conformant"] = conformant
    section["overhead_vs_serial"] = (
        round(serial_run["elapsed_s"] / elapsed, 3) if elapsed > 0 else None
    )
    section["note"] = (
        "exhaustive N=2 job: verdicts and counts must equal serial"
        " bit-for-bit (partition-invariant configuration); the state"
        " space is tiny, so elapsed_s prices protocol round-trips, not"
        " exploration — utilization is the honest headline here"
    )
    return section


# ----------------------------------------------------------------------
# The full measurement suite
# ----------------------------------------------------------------------

def run_suite(budget: int, jobs_axis=(1, 2, 4), spill_states=None) -> dict:
    """Measure every fixed workload; returns the BENCH_checker payload.

    ``spill_states`` sizes the ``store.spill_memcap`` workload (default:
    5x the budget; the acceptance run uses 5M states, where the 200 MB
    cap is actually load-bearing).
    """
    single_cpu = os.cpu_count() == 1
    sweep = {}
    for jobs in jobs_axis:
        label = "serial" if jobs == 1 else f"jobs{jobs}"
        if jobs > 1 and single_cpu:
            # Workers get capped to one core anyway; timing the fork/IPC
            # overhead would only pollute the cross-PR trend lines.
            sweep[label] = {"skipped": "single-cpu host",
                           "jobs_requested": jobs}
            continue
        sweep[label] = measure(
            {"kind": "fast_classes", "budget": budget, "jobs": jobs}
        )
    sweep["serial_fingerprint"] = measure(
        {"kind": "fast_classes", "budget": budget, "jobs": 1,
         "fingerprint": True}
    )
    sharded_jobs = max(jobs_axis)
    sweep["sharded"] = measure(
        {"kind": "fast_sharded", "budget": budget * 2, "jobs": sharded_jobs}
    )
    sweep["sharded"]["jobs"] = sharded_jobs

    # Memory axis: the object-encoded explorer at budget B vs the
    # fingerprint engines at 5B — the "5x more states in the same
    # envelope" check rides on workload_rss_bytes.
    memory = {
        "generic_full": measure({"kind": "generic", "budget": budget}),
        "generic_fingerprint_5x": measure(
            {"kind": "generic", "budget": budget * 5, "fingerprint": True}
        ),
        "fast_full": measure({"kind": "fast_single", "budget": budget * 5}),
        "fast_fingerprint_5x": measure(
            {"kind": "fast_single", "budget": budget * 5, "fingerprint": True}
        ),
    }

    # Symmetry axis: the quotient construction (PR 2) on the two
    # flagship single-class workloads plus the serial sweep, each at the
    # same state budget as its unreduced twin.  ``reduction_ratio`` is
    # concrete-states-covered per state explored; ``net_speedup`` is
    # *effective* throughput (covered states per second, i.e. including
    # the canonicalization cost) vs the unreduced run's states/s.
    identity_class = ((0, 1, 2), (0, 1, 2), (0, 1, 2))
    symmetry = {}
    for label, wiring in (
        ("identity_class", identity_class),
        ("reference_class", _REFERENCE_CLASS),
    ):
        base = measure(
            {"kind": "fast_single", "budget": budget, "class": wiring}
        )
        reduced = measure(
            {"kind": "fast_single", "budget": budget, "class": wiring,
             "symmetry": True}
        )
        symmetry[label] = {
            "unreduced": base,
            "reduced": reduced,
            "reduction_ratio": reduced["reduction_ratio"],
            "net_speedup": (
                round(reduced["covered_states_per_s"] / base["states_per_s"], 3)
                if base["states_per_s"]
                else None
            ),
        }
    sweep_reduced = measure(
        {"kind": "fast_classes", "budget": budget, "jobs": 1,
         "symmetry": True}
    )
    symmetry["sweep_serial"] = {
        "reduced": sweep_reduced,
        "reduction_ratio": sweep_reduced["reduction_ratio"],
        "net_speedup": (
            round(
                sweep_reduced["covered_states_per_s"]
                / sweep["serial"]["states_per_s"], 3
            )
            if sweep["serial"]["states_per_s"]
            else None
        ),
        "note": (
            "per-class stabilizers complete the configuration-level"
            " symmetry group |S_3 x S_3| = 36: the sweep already"
            " explores 10 canonical classes instead of 216 concrete"
            " wirings, and each class's multiplicity is exactly"
            " 36 / |stabilizer| (sum over the 10 classes = 216), so the"
            " class quotient and the per-class state quotient are the"
            " two factors of one 36-fold reduction"
        ),
    }

    # Store axis: the reference class against every visited-set backend
    # at the same budget — identical exploration, different residence.
    # ``spill_memcap`` then runs the spill backend under a hard 200 MB
    # cap; ``rss_under_cap`` is the disk-backed promise (only meaningful
    # once the run is big enough that a RAM set would blow the cap —
    # the acceptance run uses --spill-states 5000000).
    store = {}
    for backend in ("ram", "mmap", "spill"):
        store[backend] = measure(
            {"kind": "fast_single", "budget": budget, "store": backend}
        )
    store_conformant = (
        len({
            (store[b]["states"], store[b]["transitions"], store[b]["ok"])
            for b in ("ram", "mmap", "spill")
        }) == 1
    )
    memcap = 200 * 1024 * 1024
    spill_target = spill_states if spill_states is not None else budget * 5
    spill_entry = measure(
        {"kind": "fast_single", "budget": spill_target, "store": "spill",
         "mem_cap": memcap, "fingerprint": True}
    )
    spill_entry["mem_cap_bytes"] = memcap
    spill_entry["rss_under_cap"] = (
        spill_entry["workload_rss_bytes"] <= memcap
    )
    store["spill_memcap"] = spill_entry
    store["conformant"] = store_conformant
    # Parallel-merge twin of the plain spill workload: same exploration,
    # merge_jobs=2 run consolidation.  merge_wall_ms lands in both
    # entries' store detail, so serial vs parallel merge cost is a diff
    # within the section (small CI budgets stay under the parallel
    # threshold and legitimately record the serial fallback's time).
    store["spill_parallel_merge"] = measure(
        {"kind": "fast_single", "budget": budget, "store": "spill",
         "merge_jobs": 2}
    )

    # POR axis: the exhaustive N=2 class sweep in all four
    # por x symmetry combinations.  The acceptance bar: identical
    # verdicts and violation sets, >= 2x fewer transitions with
    # --por --symmetry than unreduced.
    por = {}
    for label, flags in (
        ("baseline", {}),
        ("symmetry", {"symmetry": True}),
        ("por", {"por": True}),
        ("por_symmetry", {"por": True, "symmetry": True}),
    ):
        por[label] = measure(
            {"kind": "fast_classes", "n": 2, "budget": None, "jobs": 1,
             **flags}
        )
    por_labels = ("baseline", "symmetry", "por", "por_symmetry")
    por["verdicts_identical"] = (
        len({por[label]["ok"] for label in por_labels}) == 1
        and len({
            tuple(por[label]["violations"]) for label in por_labels
        }) == 1
    )
    por["transitions_cut_por_symmetry_vs_baseline"] = round(
        por["baseline"]["transitions"]
        / max(1, por["por_symmetry"]["transitions"]), 2
    )
    por["transitions_cut_por_vs_baseline"] = round(
        por["baseline"]["transitions"] / max(1, por["por"]["transitions"]), 2
    )

    serial = sweep["serial"]
    best_label = max(
        (label for label in sweep
         if label.startswith("jobs") and "skipped" not in sweep[label]),
        key=lambda label: sweep[label]["states_per_s"] or 0,
        default=None,
    )
    derived = {
        "sweep_budget_per_class": budget,
        "speedup_best_parallel_vs_serial": (
            round(
                sweep[best_label]["states_per_s"] / serial["states_per_s"], 3
            )
            if best_label and serial["states_per_s"]
            else None
        ),
        "fingerprint_states_in_generic_envelope": {
            "generic_states": memory["generic_full"]["states"],
            "fingerprint_states": memory["fast_fingerprint_5x"]["states"],
            "ratio": round(
                memory["fast_fingerprint_5x"]["states"]
                / max(1, memory["generic_full"]["states"]), 2
            ),
            "generic_workload_rss_bytes":
                memory["generic_full"]["workload_rss_bytes"],
            "fingerprint_workload_rss_bytes":
                memory["fast_fingerprint_5x"]["workload_rss_bytes"],
        },
    }
    return {
        "sweep": sweep, "memory": memory, "symmetry": symmetry,
        "store": store, "por": por, "batch": run_batch_section(budget),
        "batch_por": run_batch_por_section(budget),
        "native": run_native_section(budget),
        "derived": derived,
    }


# ----------------------------------------------------------------------
# Pytest entry points
# ----------------------------------------------------------------------

def test_e15_serial_sweep_throughput(benchmark):
    from repro.checker.parallel import check_snapshot_classes

    rows = benchmark.pedantic(
        lambda: check_snapshot_classes(3, budget=E15_BUDGET, jobs=1),
        rounds=1, iterations=1,
    )
    assert all(result.ok for _, result in rows)
    total = sum(result.states for _, result in rows)
    benchmark.extra_info["total_states"] = total
    emit("", f"E15a — serial N=3 sweep: {total} states"
             f" at budget {E15_BUDGET}/class")


def test_e15_parallel_sweep_matches_serial(benchmark):
    from repro.checker.parallel import check_snapshot_classes

    serial = check_snapshot_classes(3, budget=E15_BUDGET, jobs=1)
    rows = benchmark.pedantic(
        lambda: check_snapshot_classes(3, budget=E15_BUDGET, jobs=2),
        rounds=1, iterations=1,
    )
    assert [
        (wiring, result.states, result.transitions, result.ok)
        for wiring, result in serial
    ] == [
        (wiring, result.states, result.transitions, result.ok)
        for wiring, result in rows
    ]
    emit("", "E15b — jobs=2 sweep identical to serial"
             f" ({len(rows)} classes)")


def test_e15_write_bench_json(benchmark):
    """Measure the full suite and write BENCH_checker.json."""
    budget = min(E15_BUDGET, 20_000)  # keep the pytest path quick
    payload = benchmark.pedantic(
        lambda: run_suite(budget), rounds=1, iterations=1
    )
    assert all(
        entry["ok"]
        for entry in payload["sweep"].values()
        if "skipped" not in entry
    )
    assert all(entry["ok"] for entry in payload["memory"].values())
    envelope = payload["derived"]["fingerprint_states_in_generic_envelope"]
    assert envelope["ratio"] >= 5.0
    assert (
        envelope["fingerprint_workload_rss_bytes"]
        <= max(envelope["generic_workload_rss_bytes"], 1)
    )
    identity = payload["symmetry"]["identity_class"]
    assert identity["reduced"]["ok"] and identity["unreduced"]["ok"]
    # The acceptance bar: the flagship config explores >= 3x fewer
    # states for the same concrete coverage.
    assert identity["reduction_ratio"] >= 3.0
    # All three store backends must have reported identical exploration.
    store = payload["store"]
    assert store["conformant"], {
        backend: (store[backend]["states"], store[backend]["transitions"])
        for backend in ("ram", "mmap", "spill")
    }
    spill_entry = store["spill_memcap"]
    assert spill_entry["ok"]
    # The disk-backed promise is only load-bearing at acceptance scale
    # (>= 5M states, where a RAM set would dwarf the 200 MB cap).
    if spill_entry["states"] >= 5_000_000:
        assert spill_entry["rss_under_cap"], spill_entry
    # POR acceptance: identical verdicts across all four por x symmetry
    # combinations, and the composed reduction cuts transitions >= 2x.
    por = payload["por"]
    assert por["verdicts_identical"], por
    assert por["transitions_cut_por_symmetry_vs_baseline"] >= 2.0, por
    # Batch engine: conformance is unconditional wherever numpy exists;
    # the >= 5x throughput bar is asserted at acceptance scale only
    # (fixed setup costs dominate tiny smoke budgets).
    batch = payload["batch"]
    if batch["available"]:
        assert batch["conformant"], batch
        if budget >= 200_000:
            assert batch["best_speedup"] >= 5.0, batch["speedups"]
    # Composed reduction: verdict conformance is unconditional; the 2x
    # speedup and within-10%-of-scalar transition cut are acceptance-
    # scale bars (fixed numpy setup dominates tiny smoke budgets).
    batch_por = payload["batch_por"]
    if batch_por["available"]:
        assert batch_por["conformant"], batch_por
        if budget >= 200_000:
            assert batch_por["speedup"] >= 2.0, batch_por
            assert batch_por["cut_ratio_batch_vs_scalar"] >= 0.9, batch_por
    # Native kernel: field-level conformance wherever a compiler exists;
    # the >= 2x-over-numpy bar is an acceptance-scale assertion.
    native = payload["native"]
    if native["available"]:
        assert native["conformant"], native
        if budget >= 200_000:
            assert native["best_speedup_vs_numpy"] >= 2.0, (
                native["speedups_vs_numpy"]
            )
    path = write_checker_bench(payload)
    emit("", f"E15c — BENCH_checker.json written: {path}",
         f"  best parallel speedup vs serial:"
         f" {payload['derived']['speedup_best_parallel_vs_serial']}x",
         f"  fingerprint envelope ratio: {envelope['ratio']}x states",
         f"  symmetry identity-class reduction:"
         f" {identity['reduction_ratio']}x"
         f" (net {identity['net_speedup']}x effective throughput)",
         f"  store backends conformant: {store['conformant']};"
         f" spill_memcap rss delta"
         f" {spill_entry['workload_rss_bytes'] // (1024 * 1024)} MiB"
         f" / cap {spill_entry['mem_cap_bytes'] // (1024 * 1024)} MiB")


# ----------------------------------------------------------------------
# Standalone: python benchmarks/bench_e15_checker_throughput.py
# ----------------------------------------------------------------------

def _print_batch_section(batch: dict) -> None:
    if not batch.get("available"):
        return
    for label in ("plain", "fingerprint", "symmetry", "symmetry_fingerprint"):
        entry = batch[label]
        print(f"  batch/{label}: scalar"
              f" {entry['scalar']['states_per_s']} st/s vs batch"
              f" {entry['batch']['states_per_s']} st/s ="
              f" {entry['speedup']}x (conformant: {entry['conformant']})")
    print(f"  batch: best speedup {batch['best_speedup']}x,"
          f" all modes conformant: {batch['conformant']}")


def _print_batch_por_section(section: dict) -> None:
    if not section.get("available"):
        return
    print(f"  batch_por: scalar+por"
          f" {section['scalar_por']['states_per_s']} st/s vs batch+por"
          f" {section['batch_por']['states_per_s']} st/s ="
          f" {section['speedup']}x; transition cut"
          f" {section['transitions_cut_batch']}x vs scalar's"
          f" {section['transitions_cut_scalar']}x (ratio"
          f" {section['cut_ratio_batch_vs_scalar']});"
          f" verdicts conformant: {section['conformant']}")


def _print_native_section(section: dict) -> None:
    if not section.get("available"):
        print(f"  native: unavailable ({section.get('reason', '?')});"
              f" nothing measured")
        return
    for label in ("plain", "fingerprint", "symmetry", "symmetry_fingerprint"):
        entry = section[label]
        print(f"  native/{label}: numpy"
              f" {entry['numpy']['states_per_s']} st/s vs native"
              f" {entry['native']['states_per_s']} st/s ="
              f" {entry['speedup_vs_numpy']}x"
              f" ({entry['speedup_vs_scalar']}x vs scalar;"
              f" conformant: {entry['conformant']})")
    print(f"  native: compiler {section['compiler']},"
          f" best {section['best_speedup_vs_numpy']}x vs numpy /"
          f" {section['best_speedup_vs_scalar']}x vs scalar,"
          f" all modes conformant: {section['conformant']}")


def _print_service_section(section: dict) -> None:
    service = section["service"]
    print(f"  service: {section['workers']} worker(s),"
          f" {service['classes']} classes / {service['shards']} shards,"
          f" {service['states']} states in {service['elapsed_s']} s"
          f" ({service['states_per_s']} st/s; serial twin"
          f" {section['serial']['elapsed_s']} s);"
          f" conformant: {section['conformant']}")
    for worker in service["per_worker"]:
        print(f"    {worker['name']}: {worker['rounds']} rounds,"
              f" busy {worker['busy_ms']} ms,"
              f" utilization {worker['utilization']}")
    print(f"  service mean utilization: {service['mean_utilization']}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--budget", type=int, default=E15_BUDGET,
                        help="states per wiring class (sweep axis)")
    parser.add_argument("--jobs", type=int, nargs="+", default=[1, 2, 4],
                        help="parallelism axis, e.g. --jobs 1 2 4")
    parser.add_argument("--out", type=Path, default=None,
                        help="output path (default: repo BENCH_checker.json)")
    parser.add_argument("--spill-states", type=int, default=5_000_000,
                        help="states for the store.spill_memcap workload"
                             " (acceptance scale: 5M under a 200 MB cap)")
    parser.add_argument("--only-batch", action="store_true",
                        help="measure only the scalar-vs-batch engine"
                             " section and merge it into the existing"
                             " BENCH_checker.json (other sections are"
                             " left untouched)")
    parser.add_argument("--only-native", action="store_true",
                        help="measure only the native-kernel section"
                             " (generated-C vs numpy batch kernel vs"
                             " scalar, adjacent per mode) and merge it"
                             " into the existing BENCH_checker.json")
    parser.add_argument("--only-batch-por", action="store_true",
                        help="measure only the composed batch+POR"
                             " section (unreduced vs scalar+por vs"
                             " batch+por) and merge it into the"
                             " existing BENCH_checker.json")
    parser.add_argument("--only-service", action="store_true",
                        help="measure only the distributed-service"
                             " section (coordinator + local socket"
                             " workers vs serial on the exhaustive N=2"
                             " sweep) and merge it into the existing"
                             " BENCH_checker.json")
    parser.add_argument("--service-workers", type=int, default=2,
                        help="worker processes for the --only-service"
                             " section")
    args = parser.parse_args(argv)

    if args.only_service:
        section = run_service_section(workers=args.service_workers)
        path = write_checker_bench({"service": section}, path=args.out)
        print(f"wrote {path}")
        _print_service_section(section)
        return 0 if section["conformant"] else 1

    if args.only_native:
        section = run_native_section(args.budget)
        path = write_checker_bench({"native": section}, path=args.out)
        print(f"wrote {path}")
        _print_native_section(section)
        if not section["available"]:
            return 0
        return 0 if section["conformant"] else 1

    if args.only_batch:
        batch = run_batch_section(args.budget)
        path = write_checker_bench({"batch": batch}, path=args.out)
        print(f"wrote {path}")
        _print_batch_section(batch)
        if not batch["available"]:
            print("  batch engine unavailable (no numpy); nothing measured")
            return 0
        return 0 if batch["conformant"] else 1

    if args.only_batch_por:
        section = run_batch_por_section(args.budget)
        path = write_checker_bench({"batch_por": section}, path=args.out)
        print(f"wrote {path}")
        _print_batch_por_section(section)
        if not section["available"]:
            print("  batch engine unavailable (no numpy); nothing measured")
            return 0
        return 0 if section["conformant"] else 1

    payload = run_suite(args.budget, jobs_axis=tuple(args.jobs),
                        spill_states=args.spill_states)
    path = write_checker_bench(payload, path=args.out)
    print(f"wrote {path}")
    for label, entry in payload["sweep"].items():
        if "skipped" in entry:
            print(f"  sweep/{label}: skipped ({entry['skipped']})")
            continue
        print(f"  sweep/{label}: {entry['states']} states,"
              f" {entry['states_per_s']} states/s,"
              f" rss {entry['workload_rss_bytes'] // 1024} KiB,"
              f" ok={entry['ok']}")
    for label, entry in payload["memory"].items():
        print(f"  memory/{label}: {entry['states']} states,"
              f" rss {entry['workload_rss_bytes'] // 1024} KiB")
    for label, entry in payload["symmetry"].items():
        reduced = entry["reduced"]
        print(f"  symmetry/{label}: {reduced['states']} representatives"
              f" cover {reduced['covered_states']} states"
              f" ({entry['reduction_ratio']}x reduction,"
              f" net {entry['net_speedup']}x effective throughput)")
    envelope = payload["derived"]["fingerprint_states_in_generic_envelope"]
    print(f"  fingerprint vs object-encoded envelope:"
          f" {envelope['ratio']}x states")
    store = payload["store"]
    for backend in ("ram", "mmap", "spill"):
        entry = store[backend]
        print(f"  store/{backend}: {entry['states']} states,"
              f" {entry['states_per_s']} states/s,"
              f" rss {entry['workload_rss_bytes'] // 1024} KiB,"
              f" disk {entry['store']['file_bytes'] // 1024} KiB")
    spill_entry = store["spill_memcap"]
    print(f"  store/spill_memcap: {spill_entry['states']} states,"
          f" rss delta {spill_entry['workload_rss_bytes'] // (1024 * 1024)}"
          f" MiB / cap {spill_entry['mem_cap_bytes'] // (1024 * 1024)} MiB"
          f" (under cap: {spill_entry['rss_under_cap']}),"
          f" disk {spill_entry['store']['file_bytes'] // (1024 * 1024)} MiB")
    print(f"  store backends conformant: {store['conformant']}")
    merge_entry = store["spill_parallel_merge"]
    print(f"  store/spill_parallel_merge: {merge_entry['states']} states,"
          f" {merge_entry['store']['merges']} merges in"
          f" {merge_entry['store']['merge_wall_ms']} ms"
          f" (merge_jobs={merge_entry['store']['merge_jobs']};"
          f" serial twin: {store['spill']['store']['merge_wall_ms']} ms)")
    por = payload["por"]
    print(f"  por: N=2 exhaustive sweep, verdicts identical across"
          f" por x symmetry: {por['verdicts_identical']};"
          f" transitions cut {por['transitions_cut_por_vs_baseline']}x"
          f" (por) / {por['transitions_cut_por_symmetry_vs_baseline']}x"
          f" (por+symmetry)")
    _print_batch_section(payload["batch"])
    _print_batch_por_section(payload["batch_por"])
    _print_native_section(payload["native"])
    ok = all(
        e["ok"] for e in payload["sweep"].values() if "skipped" not in e
    )
    ok = ok and por["verdicts_identical"]
    ok = ok and por["transitions_cut_por_symmetry_vs_baseline"] >= 2.0
    ok = ok and store["conformant"] and spill_entry["ok"]
    if payload["batch"]["available"]:
        ok = ok and payload["batch"]["conformant"]
    if payload["batch_por"]["available"]:
        ok = ok and payload["batch_por"]["conformant"]
    if payload["native"]["available"]:
        ok = ok and payload["native"]["conformant"]
    if spill_entry["states"] >= 5_000_000:
        ok = ok and spill_entry["rss_under_cap"]
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
