"""E13 — immediate snapshot is not what Figure 3 solves (Conclusion).

The paper's Conclusion transfers Gafni's impossibility: immediate
snapshot is not group-solvable under processor anonymity, hence not in
the fully-anonymous model.  Consistently, the Figure 3 algorithm solves
the snapshot task but not the immediate variant.  This benchmark

- regenerates the staggered execution whose outputs violate immediacy
  while remaining a valid snapshot (the separation witness), and
- surveys random schedules: containment violations never occur, while
  immediacy violations appear as soon as schedules are skewed.
"""

import random

from repro.api import build_runner
from repro.core import SnapshotMachine
from repro.memory.wiring import WiringAssignment
from repro.tasks import ImmediateSnapshotTask, SnapshotTask

from _bench_utils import SEEDS, emit


class _Manual:
    def choose(self, step_index, enabled):
        return None


def staggered_witness():
    machine = SnapshotMachine(3)
    runner = build_runner(
        machine, [1, 2, 3], seed=None,
        wiring=WiringAssignment.identity(3, 3), scheduler=_Manual(),
    )
    runner.step_process(0)
    runner.step_process(1)
    while runner.processes[0].status.value == "running":
        runner.step_process(0)
    for _ in range(100_000):
        enabled = [
            p.pid for p in runner.processes[1:]
            if p.status.value == "running"
        ]
        if not enabled:
            break
        for pid in enabled:
            runner.step_process(pid)
    return runner.result()


def survey(runs):
    """Skewed random schedules: count immediacy vs containment failures."""
    snapshot_task = SnapshotTask()
    immediate_task = ImmediateSnapshotTask()
    rng = random.Random(0xE13)
    immediacy_violations = 0
    containment_violations = 0
    for _ in range(runs):
        n = rng.randint(3, 5)

        class Skewed:
            """Random scheduler heavily biased toward low pids, which
            makes early terminations with small views likely."""

            def choose(self, step_index, enabled, rng=rng):
                weights = [2 ** (len(enabled) - i) for i in range(len(enabled))]
                return rng.choices(list(enabled), weights=weights)[0]

        machine = SnapshotMachine(n)
        runner = build_runner(
            machine, list(range(1, n + 1)), seed=rng.randrange(2**32),
            scheduler=Skewed(),
        )
        result = runner.run(1_000_000)
        outputs = {pid + 1: result.outputs[pid] for pid in range(n)}
        if not snapshot_task.is_valid(outputs):
            containment_violations += 1
        if not immediate_task.is_valid(outputs):
            immediacy_violations += 1
    return immediacy_violations, containment_violations, runs


def test_e13_immediate_snapshot_separation(benchmark):
    def experiment():
        witness = staggered_witness()
        return witness, survey(SEEDS * 2)

    witness, (immediacy, containment, runs) = benchmark(experiment)

    outputs = {pid + 1: view for pid, view in witness.outputs.items()}
    assert SnapshotTask().is_valid(outputs)
    assert not ImmediateSnapshotTask().is_valid(outputs)
    assert containment == 0, "the snapshot task itself must never fail"
    assert immediacy > 0, "skewed schedules should exhibit non-immediacy"

    benchmark.extra_info["witness_outputs"] = {
        str(pid): sorted(view) for pid, view in outputs.items()
    }
    benchmark.extra_info["immediacy_violations"] = immediacy
    benchmark.extra_info["runs"] = runs
    emit(
        "",
        "E13 — snapshot task vs immediate snapshot:",
        f"  witness outputs:"
        f" { {pid: sorted(view) for pid, view in sorted(outputs.items())} }"
        f" — valid snapshot, immediacy VIOLATED"
        f" (2 ∈ o[1] but o[2] ⊄ o[1])",
        f"  skewed-schedule survey ({runs} runs): containment violations"
        f" {containment}, immediacy violations {immediacy}",
        "  (consistent with the Conclusion: immediate snapshot is not"
        " group-solvable under anonymity; Figure 3 solves only the plain"
        " snapshot task)",
    )
